package server

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/clock"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

func testRepo(t *testing.T) *Repository {
	t.Helper()
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 12
	scfg.TotalSize = 4 * cost.GB
	scfg.MinObjectSize = 50 * cost.MB
	scfg.MaxObjectSize = cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := New(Config{Survey: survey, Scale: netproto.DefaultScale()})
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil survey should fail")
	}
}

func TestAddrBeforeStart(t *testing.T) {
	repo := testRepo(t)
	if got := repo.Addr(); got != "" {
		t.Errorf("Addr before Start = %q, want empty", got)
	}
}

func TestOutstandingSince(t *testing.T) {
	repo := testRepo(t)
	repo.ApplyUpdate(model.Update{ID: 1, Object: 3, Cost: 1, Time: 10 * time.Second})
	repo.ApplyUpdate(model.Update{ID: 2, Object: 3, Cost: 1, Time: 20 * time.Second})
	repo.ApplyUpdate(model.Update{ID: 3, Object: 4, Cost: 1, Time: 30 * time.Second})

	got := repo.OutstandingSince(3, 15*time.Second)
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("OutstandingSince(3, 15s) = %+v, want update 2", got)
	}
	if got := repo.OutstandingSince(3, 0); len(got) != 2 {
		t.Errorf("OutstandingSince(3, 0) = %d updates, want 2", len(got))
	}
	if got := repo.OutstandingSince(9, 0); len(got) != 0 {
		t.Errorf("unrelated object has %d outstanding", len(got))
	}
}

func TestRequestResponsesDirect(t *testing.T) {
	repo := testRepo(t)
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	nc, err := net.Dial("tcp", repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "cache"}}); err != nil {
		t.Fatal(err)
	}

	// Query execution.
	if err := c.Send(netproto.Frame{Type: netproto.MsgQuery, Body: netproto.QueryMsg{
		Query: model.Query{ID: 1, Objects: []model.ObjectID{1}, Cost: 5 * cost.MB, Time: time.Second},
	}}); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	res, ok := reply.Body.(netproto.QueryResultMsg)
	if !ok {
		t.Fatalf("reply %s", reply.Type)
	}
	if res.Source != "repository" || res.Logical != 5*cost.MB {
		t.Errorf("result = %+v", res)
	}
	if len(res.Payload) == 0 {
		t.Error("scaled payload missing")
	}
	if got := repo.Ledger().QueryShip; got != 5*cost.MB {
		t.Errorf("ledger = %v", got)
	}

	// Unknown object load fails with an error frame.
	if err := c.Send(netproto.Frame{Type: netproto.MsgLoadObject, Body: netproto.LoadObjectMsg{Object: 99}}); err != nil {
		t.Fatal(err)
	}
	reply, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.Body.(netproto.ErrorMsg); !ok {
		t.Errorf("expected error frame, got %s", reply.Type)
	}

	// Unknown update shipment fails.
	if err := c.Send(netproto.Frame{Type: netproto.MsgShipUpdates, Body: netproto.ShipUpdatesMsg{
		IDs: []model.UpdateID{12345},
	}}); err != nil {
		t.Fatal(err)
	}
	reply, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.Body.(netproto.ErrorMsg); !ok {
		t.Errorf("expected error frame, got %s", reply.Type)
	}

	// Valid update shipment after a pipeline feed.
	repo.ApplyUpdate(model.Update{ID: 7, Object: 2, Cost: 3 * cost.MB, Time: time.Second})
	if err := c.Send(netproto.Frame{Type: netproto.MsgShipUpdates, Body: netproto.ShipUpdatesMsg{
		IDs: []model.UpdateID{7},
	}}); err != nil {
		t.Fatal(err)
	}
	reply, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ups, ok := reply.Body.(netproto.UpdatesMsg)
	if !ok {
		t.Fatalf("reply %s", reply.Type)
	}
	if len(ups.Updates) != 1 || ups.Updates[0].ID != 7 {
		t.Errorf("updates = %+v", ups.Updates)
	}
	if got := repo.Ledger().UpdateShip; got != 3*cost.MB {
		t.Errorf("update ledger = %v", got)
	}

	// Object load returns size-accurate metadata.
	if err := c.Send(netproto.Frame{Type: netproto.MsgLoadObject, Body: netproto.LoadObjectMsg{Object: 2}}); err != nil {
		t.Fatal(err)
	}
	reply, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	data, ok := reply.Body.(netproto.ObjectDataMsg)
	if !ok {
		t.Fatalf("reply %s", reply.Type)
	}
	if data.Object.ID != 2 || data.Object.Size <= 0 {
		t.Errorf("object = %+v", data.Object)
	}
	if data.FreshAsOf != time.Second {
		t.Errorf("FreshAsOf = %v, want 1s (the shipped update)", data.FreshAsOf)
	}
}

func TestInvalidationBroadcastNonBlocking(t *testing.T) {
	repo := testRepo(t)
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	// Subscribe but never read: the pipeline must not block even with a
	// stalled subscriber.
	nc, err := net.Dial("tcp", repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Pin the receive buffer before the server starts pushing.
	// Setting it explicitly disables the kernel's receive-window
	// autotuning, which on hosts with large tcp_rmem ceilings would
	// otherwise absorb every notice below and the stall would never
	// propagate back to the server's drain goroutine (zero drops, a
	// flaky test).
	if tcp, ok := nc.(*net.TCPConn); ok {
		if err := tcp.SetReadBuffer(4096); err != nil {
			t.Fatal(err)
		}
	}
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "invalidations"}}); err != nil {
		t.Fatal(err)
	}
	// Wait for the server to register the subscription: the push below
	// finishes in milliseconds, so racing the handshake would broadcast
	// to nobody and count no drops.
	regDeadline := time.Now().Add(5 * time.Second)
	for repo.Subscribers() == 0 {
		if time.Now().After(regDeadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	// Push enough notices to overwhelm the subscriber buffer plus
	// whatever the kernel's socket buffers absorb: the stalled reader
	// guarantees drops at this volume.
	const updates = 200_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < updates; i++ {
			repo.ApplyUpdate(model.Update{
				ID: model.UpdateID(i + 1), Object: 1, Cost: 1,
				Time: time.Duration(i) * time.Millisecond,
			})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline blocked on a stalled subscriber")
	}
	// The subscriber never read a byte, so the bulk of the notices were
	// dropped — and the drops must be counted, not silent.
	if got := repo.DroppedInvalidations(); got == 0 {
		t.Error("dropped invalidations = 0, want > 0 with a stalled subscriber")
	}

	// The counter is also surfaced over the wire in the stats reply.
	sc, err := net.Dial("tcp", repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	cc := netproto.NewConn(sc)
	if err := cc.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "cache"}}); err != nil {
		t.Fatal(err)
	}
	if err := cc.Send(netproto.Frame{Type: netproto.MsgStats, Body: netproto.StatsMsg{}}); err != nil {
		t.Fatal(err)
	}
	reply, err := cc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	stats, ok := reply.Body.(netproto.StatsMsg)
	if !ok {
		t.Fatalf("reply %s", reply.Type)
	}
	if stats.DroppedInvalidations != repo.DroppedInvalidations() {
		t.Errorf("StatsMsg dropped = %d, repo reports %d",
			stats.DroppedInvalidations, repo.DroppedInvalidations())
	}
}

func TestAddObjectsIngestAndAnnounce(t *testing.T) {
	repo := testRepo(t)
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	// Subscribe to the invalidation stream before publishing.
	nc, err := net.Dial("tcp", repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "invalidations"}}); err != nil {
		t.Fatal(err)
	}
	regDeadline := time.Now().Add(5 * time.Second)
	for repo.Subscribers() == 0 {
		if time.Now().After(regDeadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}

	base := repo.cfg.Survey.NumObjects()
	births := []model.Birth{
		{Object: model.Object{ID: model.ObjectID(base + 1), Size: 100 * cost.MB}, RA: 10, Dec: 5, Time: time.Second},
		{Object: model.Object{ID: model.ObjectID(base + 2), Size: 150 * cost.MB}, RA: 200, Dec: -40, Time: time.Second},
	}
	accepted, err := repo.AddObjects(births)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 2 {
		t.Fatalf("accepted = %d, want 2", accepted)
	}
	if repo.ObjectsBorn() != 2 {
		t.Errorf("ObjectsBorn = %d", repo.ObjectsBorn())
	}
	// Republishing is idempotent: known births are skipped silently.
	accepted, err = repo.AddObjects(births)
	if err != nil || accepted != 0 {
		t.Fatalf("republish accepted %d, err %v; want 0, nil", accepted, err)
	}
	// A gapped birth is an error, and partial batches report progress.
	if _, err := repo.AddObjects([]model.Birth{
		{Object: model.Object{ID: model.ObjectID(base + 9), Size: cost.MB}},
	}); err == nil {
		t.Error("gapped birth should fail")
	}

	// The announcement arrived on the stream exactly once.
	f, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ann, ok := f.Body.(netproto.ObjectBirthMsg)
	if f.Type != netproto.MsgObjectBirth || !ok {
		t.Fatalf("stream sent %s", f.Type)
	}
	if len(ann.Births) != 2 || ann.Births[0].Object.ID != model.ObjectID(base+1) {
		t.Errorf("announcement = %+v", ann.Births)
	}
	if ann.Births[0].Object.Trixel == 0 {
		t.Error("announced birth should carry the inherited trixel")
	}

	// Born objects are loadable and queryable like any other.
	sess, err := netproto.DialSession(repo.Addr(), "client", netproto.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	reply, err := sess.RoundTrip(context.Background(), netproto.Frame{
		Type: netproto.MsgQuery,
		Body: netproto.QueryMsg{Query: model.Query{
			ID: 1, Objects: []model.ObjectID{model.ObjectID(base + 2)}, Cost: cost.MB,
			Tolerance: model.AnyStaleness, Time: time.Minute,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != netproto.MsgQueryResult {
		t.Fatalf("query over born object replied %s", reply.Type)
	}
	reply, err = sess.RoundTrip(context.Background(), netproto.Frame{
		Type: netproto.MsgLoadObject,
		Body: netproto.LoadObjectMsg{Object: model.ObjectID(base + 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := reply.Body.(netproto.ObjectDataMsg); !ok || data.Object.Size != 100*cost.MB {
		t.Fatalf("load of born object replied %s (%+v)", reply.Type, reply.Body)
	}
}

// TestExecDelayFakeClock pins the injected-clock satellite: a huge
// simulated execution delay costs no wall time when a fake clock paces
// it, so tier-1 runs that exercise ExecDelay are timing-independent.
func TestExecDelayFakeClock(t *testing.T) {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 12
	scfg.TotalSize = 4 * cost.GB
	scfg.MinObjectSize = 50 * cost.MB
	scfg.MaxObjectSize = cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	fake := clock.NewFake(time.Unix(0, 0))
	repo, err := New(Config{
		Survey:    survey,
		Scale:     netproto.PayloadScale{},
		ExecDelay: time.Hour, // would hang any wall-clock test
		Clock:     fake,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	sess, err := netproto.DialSession(repo.Addr(), "client", netproto.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	start := time.Now()
	type outcome struct {
		frame netproto.Frame
		err   error
	}
	got := make(chan outcome, 1)
	go func() {
		reply, err := sess.RoundTrip(context.Background(), netproto.Frame{
			Type: netproto.MsgQuery,
			Body: netproto.QueryMsg{Query: model.Query{
				ID: 1, Objects: []model.ObjectID{1}, Cost: cost.MB,
				Tolerance: model.AnyStaleness, Time: time.Minute,
			}},
		})
		got <- outcome{frame: reply, err: err}
	}()
	// Wait for the handler to park on the fake clock, then advance
	// past the simulated hour.
	for fake.Sleepers() == 0 {
		if time.Since(start) > 10*time.Second {
			t.Fatal("query never reached the simulated execution delay")
		}
		time.Sleep(time.Millisecond)
	}
	fake.Advance(time.Hour)
	out := <-got
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.frame.Type != netproto.MsgQueryResult {
		t.Fatalf("reply %s", out.frame.Type)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("simulated hour took %v of wall time", elapsed)
	}
}
