package cache_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// persistSurveyConfig builds the equal-sized universe the persistence
// tests use: 1 GB objects so a query costing an object's size forces a
// deterministic VCover load.
func persistSurveyConfig(n int) catalog.Config {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = n
	scfg.TotalSize = cost.Bytes(n) * cost.GB
	scfg.MinObjectSize = cost.GB
	scfg.MaxObjectSize = cost.GB
	return scfg
}

// startPersistRepo spins up a repository over a fresh survey and
// returns both.
func startPersistRepo(t *testing.T, n int) (*catalog.Survey, *server.Repository) {
	t.Helper()
	survey, err := catalog.NewSurvey(persistSurveyConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	return survey, repo
}

// TestWarmRestartStandalone is the end-to-end durability contract on a
// standalone cache: warm state (residents and adopted births) written
// by one incarnation is recovered by the next, which answers from
// cache without reloading anything — including a newborn its static
// config has never heard of.
func TestWarmRestartStandalone(t *testing.T) {
	survey, repo := startPersistRepo(t, 16)
	base := slices.Clone(survey.Objects())
	mirror, err := catalog.NewSurvey(persistSurveyConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spawn := func() *cache.Middleware {
		t.Helper()
		mw, err := cache.New(cache.Config{
			RepoAddr:      repo.Addr(),
			PolicyFactory: func() core.Policy { return core.NewVCover(core.DefaultVCoverConfig()) },
			Objects:       base,
			Capacity:      20 * cost.GB,
			Scale:         netproto.PayloadScale{},
			DataDir:       dir,
			// Rely on the Close flush (the satellite contract under
			// test), not the periodic loop.
			SnapshotInterval: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mw.Start(); err != nil {
			t.Fatal(err)
		}
		return mw
	}

	mw1 := spawn()
	cl, err := client.Dial(mw1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Warm four base objects (query cost = object size forces the
	// load), then adopt a burst of births.
	for _, o := range base[:4] {
		if _, err := cl.Query(ctx, model.Query{
			Objects: []model.ObjectID{o.ID}, Cost: o.Size,
			Tolerance: model.AnyStaleness, Time: time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	births, err := mirror.GrowObjects(rand.New(rand.NewSource(9)), 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddObjects(ctx, births); err != nil {
		t.Fatal(err)
	}
	newborn := births[0].Object
	if _, err := cl.Query(ctx, model.Query{
		Objects: []model.ObjectID{newborn.ID}, Cost: newborn.Size,
		Tolerance: model.AnyStaleness, Time: 3 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	before := mw1.Stats()
	if len(before.Cached) == 0 {
		t.Fatal("nothing cached after the warm-up; the test would be vacuous")
	}
	cl.Close()
	if err := mw1.Close(); err != nil {
		t.Fatal(err)
	}

	mw2 := spawn()
	defer mw2.Close()
	after := mw2.Stats()
	if after.RecoveredWarm == 0 {
		t.Fatal("restart recovered no residents")
	}
	if !slices.Equal(after.Cached, before.Cached) {
		t.Errorf("recovered resident set %v, want %v", after.Cached, before.Cached)
	}
	cl2, err := client.Dial(mw2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	// A warm object answers at the cache with no reload; the newborn —
	// absent from mw2's static config — is queryable because recovery
	// restored the grown universe.
	res, err := cl2.Query(ctx, model.Query{
		Objects: []model.ObjectID{base[0].ID}, Cost: cost.MB,
		Tolerance: model.AnyStaleness, Time: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Errorf("warm-recovered object answered from %q, want cache", res.Source)
	}
	res, err = cl2.Query(ctx, model.Query{
		Objects: []model.ObjectID{newborn.ID}, Cost: cost.MB,
		Tolerance: model.AnyStaleness, Time: time.Minute,
	})
	if err != nil {
		t.Fatalf("recovered newborn %d not queryable: %v", newborn.ID, err)
	}
	if res.Source != "cache" {
		t.Errorf("warm-recovered newborn answered from %q, want cache", res.Source)
	}
	if got := mw2.Ledger().ObjectLoad; got != 0 {
		t.Errorf("warm restart reloaded %v from the repository", got)
	}
}

// TestRestartFromTornJournal crashes a cache mid-write: the data
// directory is copied while the node is still serving (so the journal
// image may end mid-record), the tail is additionally truncated, and a
// fresh node must boot from the image without error and keep serving.
func TestRestartFromTornJournal(t *testing.T) {
	survey, repo := startPersistRepo(t, 16)
	base := slices.Clone(survey.Objects())
	liveDir, crashDir := t.TempDir(), t.TempDir()
	spawn := func(dir string) *cache.Middleware {
		t.Helper()
		mw, err := cache.New(cache.Config{
			RepoAddr:         repo.Addr(),
			PolicyFactory:    func() core.Policy { return core.NewVCover(core.DefaultVCoverConfig()) },
			Objects:          base,
			Capacity:         20 * cost.GB,
			Scale:            netproto.PayloadScale{},
			DataDir:          dir,
			SnapshotInterval: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mw.Start(); err != nil {
			t.Fatal(err)
		}
		return mw
	}

	mw1 := spawn(liveDir)
	defer mw1.Close()
	cl, err := client.Dial(mw1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, o := range base[:6] {
		if _, err := cl.Query(ctx, model.Query{
			Objects: []model.ObjectID{o.ID}, Cost: o.Size,
			Tolerance: model.AnyStaleness, Time: time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Take the crash image while the node is live (no Close flush), then
	// tear the journal tail to simulate a record cut mid-append.
	for _, name := range []string{"snapshot.dp", "journal.dp"} {
		raw, err := os.ReadFile(filepath.Join(liveDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if name == "journal.dp" && len(raw) > 8 {
			raw = raw[:len(raw)-3]
		}
		if err := os.WriteFile(filepath.Join(crashDir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	mw2 := spawn(crashDir)
	defer mw2.Close()
	cl2, err := client.Dial(mw2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	// Whatever prefix survived must serve; at minimum the node is up
	// and every base object is queryable.
	for _, o := range base[:6] {
		if _, err := cl2.Query(ctx, model.Query{
			Objects: []model.ObjectID{o.ID}, Cost: cost.MB,
			Tolerance: model.AnyStaleness, Time: time.Minute,
		}); err != nil {
			t.Fatalf("object %d not queryable after torn-journal recovery: %v", o.ID, err)
		}
	}
}
