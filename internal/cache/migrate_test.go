package cache_test

import (
	"slices"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// startReshardable spins up a repository plus a reshard-capable
// middleware (policy factory + replicated capacity) owning the whole
// survey, and warms every object into it.
func startReshardable(t *testing.T) (*catalog.Survey, *server.Repository, *cache.Middleware) {
	t.Helper()
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	scfg.TotalSize = 16 * cost.GB
	scfg.MinObjectSize = cost.GB
	scfg.MaxObjectSize = cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.DefaultScale()})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	mw, err := cache.New(cache.Config{
		RepoAddr:        repo.Addr(),
		PolicyFactory:   func() core.Policy { return core.NewVCover(core.DefaultVCoverConfig()) },
		Objects:         survey.Objects(),
		Capacity:        survey.TotalSize(),
		ReshardCapacity: cache.ReplicatedCapacity,
		Scale:           netproto.DefaultScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mw.Close() })

	cl, err := client.Dial(mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, o := range survey.Objects() {
		if _, err := cl.Query(ctx, model.Query{
			Objects:   []model.ObjectID{o.ID},
			Cost:      o.Size,
			Tolerance: model.AnyStaleness,
			Time:      time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return survey, repo, mw
}

// TestReshardCarriesOwnedResidents checks the atomic filter/policy
// swap: after resharding to a subset, still-owned residents stay warm,
// unowned ones are dropped, and queries enforce the new boundary.
func TestReshardCarriesOwnedResidents(t *testing.T) {
	survey, _, mw := startReshardable(t)
	all := survey.Objects()
	if got := len(mw.Stats().Cached); got != len(all) {
		t.Fatalf("warmup cached %d of %d objects", got, len(all))
	}

	keep := make([]model.ObjectID, 0, len(all)/2)
	for i, o := range all {
		if i%2 == 0 {
			keep = append(keep, o.ID)
		}
	}
	resident, dropped, err := mw.Reshard(1, keep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resident != len(keep) || dropped != len(all)-len(keep) {
		t.Errorf("reshard kept %d, dropped %d; want %d kept, %d dropped",
			resident, dropped, len(keep), len(all)-len(keep))
	}
	st := mw.Stats()
	if !slices.Equal(st.Cached, keep) {
		t.Errorf("cached after reshard = %v, want %v", st.Cached, keep)
	}

	cl, err := client.Dial(mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// A still-owned object answers warm, locally.
	res, err := cl.Query(ctx, model.Query{
		Objects: []model.ObjectID{keep[0]}, Cost: cost.KB,
		Tolerance: model.AnyStaleness, Time: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Errorf("owned resident answered from %s, want cache", res.Source)
	}
	// A dropped object is now outside the shard: the query is rejected
	// (a routing bug, not a degradable condition).
	var unowned model.ObjectID
	for _, o := range all {
		if !slices.Contains(keep, o.ID) {
			unowned = o.ID
			break
		}
	}
	if _, err := cl.Query(ctx, model.Query{
		Objects: []model.ObjectID{unowned}, Cost: cost.KB,
		Tolerance: model.AnyStaleness, Time: time.Minute,
	}); err == nil {
		t.Error("query for an unowned object succeeded after reshard")
	}
}

// TestReshardRejectsStaleEpoch pins the superseded-resize guard: a
// delayed reshard from an older epoch must not clobber the owned set
// a newer epoch installed (same-epoch retries stay allowed — widen
// and narrow share an epoch).
func TestReshardRejectsStaleEpoch(t *testing.T) {
	survey, _, mw := startReshardable(t)
	all := survey.Objects()
	half := make([]model.ObjectID, 0, len(all)/2)
	for i, o := range all {
		if i%2 == 0 {
			half = append(half, o.ID)
		}
	}
	whole := make([]model.ObjectID, 0, len(all))
	for _, o := range all {
		whole = append(whole, o.ID)
	}
	if _, _, err := mw.Reshard(2, whole, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mw.Reshard(1, half, nil); err == nil {
		t.Error("stale epoch-1 reshard applied after epoch 2")
	}
	if got := len(mw.Stats().Cached); got != len(all) {
		t.Errorf("stale reshard disturbed residency: %d cached, want %d", got, len(all))
	}
	if _, _, err := mw.Reshard(2, half, nil); err != nil {
		t.Errorf("same-epoch reshard (narrow after widen) rejected: %v", err)
	}
}

// TestReshardRejectsBadInputs pins the failure modes that must leave
// the node untouched.
func TestReshardRejectsBadInputs(t *testing.T) {
	survey, _, mw := startReshardable(t)
	before := len(mw.Stats().Cached)
	if _, _, err := mw.Reshard(1, []model.ObjectID{9999}, nil); err == nil {
		t.Error("reshard accepted an object outside the universe")
	}
	if _, _, err := mw.Reshard(1, nil, nil); err == nil {
		t.Error("reshard accepted an empty owned set")
	}
	if got := len(mw.Stats().Cached); got != before {
		t.Errorf("failed reshards disturbed residency: %d → %d", before, got)
	}
	_ = survey
}

// TestMigrationWarmsDestination streams cached state from a warm
// source shard to a cold destination shard over the migrate frames and
// checks the destination answers from cache afterwards — the wire path
// a live resize drives.
func TestMigrationWarmsDestination(t *testing.T) {
	survey, repo, src := startReshardable(t)
	all := survey.Objects()
	// The destination owns the second half of the universe, cold.
	var destOwned []model.ObjectID
	for i, o := range all {
		if i >= len(all)/2 {
			destOwned = append(destOwned, o.ID)
		}
	}
	ownedSet := make(map[model.ObjectID]bool, len(destOwned))
	for _, id := range destOwned {
		ownedSet[id] = true
	}
	dst, err := cache.New(cache.Config{
		RepoAddr:        repo.Addr(),
		PolicyFactory:   func() core.Policy { return core.NewVCover(core.DefaultVCoverConfig()) },
		Objects:         all,
		ObjectFilter:    func(id model.ObjectID) bool { return ownedSet[id] },
		Capacity:        survey.TotalSize(),
		ReshardCapacity: cache.ReplicatedCapacity,
		Scale:           netproto.DefaultScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Close() })

	// Command the source to migrate the destination's objects, as the
	// router would during a resize.
	sess, err := netproto.DialSession(src.Addr(), "client", netproto.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	reply, err := sess.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgMigrateBegin,
		Body: netproto.MigrateBeginMsg{Epoch: 1, Dest: dst.Addr(), Objects: destOwned},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := reply.Body.(netproto.MigrateBeginMsg)
	if !ok {
		t.Fatalf("migrate-begin replied %s", reply.Type)
	}
	if sum.Moved != int64(len(destOwned)) {
		t.Errorf("source moved %d objects, want %d", sum.Moved, len(destOwned))
	}
	if sum.MovedBytes == 0 {
		t.Error("source reports zero moved bytes")
	}

	dstStats := dst.Stats()
	if dstStats.MigratedIn != int64(len(destOwned)) {
		t.Errorf("destination imported %d, want %d", dstStats.MigratedIn, len(destOwned))
	}
	if src.Stats().MigratedOut != int64(len(destOwned)) {
		t.Errorf("source migrated-out counter = %d, want %d", src.Stats().MigratedOut, len(destOwned))
	}
	cl, err := client.Dial(dst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query(ctx, model.Query{
		Objects: []model.ObjectID{destOwned[0]}, Cost: cost.KB,
		Tolerance: model.AnyStaleness, Time: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Errorf("migrated object answered from %s, want cache (warm)", res.Source)
	}
	// Re-sending the same chunk stream must not double-import.
	reply, err = sess.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgMigrateBegin,
		Body: netproto.MigrateBeginMsg{Epoch: 2, Dest: dst.Addr(), Objects: destOwned},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := dst.Stats().MigratedIn; got != int64(len(destOwned)) {
		t.Errorf("duplicate migration imported again: counter %d", got)
	}
	_ = reply
}
