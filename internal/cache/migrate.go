// Live resharding and warm cache migration. A cluster resize changes
// which objects this node owns; instead of restarting the node cold,
// the router drives three operations implemented here:
//
//   - Reshard: atomically replace the owned object set. The policy is
//     rebuilt for the new universe (the decision framework is
//     Init-once by design) and still-owned resident objects are
//     carried over warm via core.Warmable; residents the node no
//     longer owns are dropped for free.
//   - Migrate-out (MsgMigrateBegin): stream the cached state of the
//     listed objects to a sibling shard, chunked under the frame
//     limit, over an ordinary v2 session — shard to shard, not
//     through the router.
//   - Migrate-in (MsgMigrateChunk/Done): adopt objects a sibling
//     streamed to us, again via core.Warmable, skipping anything we
//     do not own or already hold.
//
// None of it touches the repository: a warm move costs intra-cluster
// traffic only, which is the point — the repository ledger (the
// paper's objective function) sees no reload for moved objects.
package cache

import (
	"context"
	"fmt"
	"slices"
	"time"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// migrateChunkObjects bounds how many objects ride in one
// MsgMigrateChunk; migrateChunkPayload bounds the chunk's summed
// physical payload well under netproto.MaxFrame.
const (
	migrateChunkObjects = 64
	migrateChunkPayload = 1 << 20
)

// migrateRoundTripTimeout bounds each chunk round trip of an outbound
// migration stream (a wedged destination must not hold the source's
// mux worker forever).
const migrateRoundTripTimeout = 30 * time.Second

// Reshard atomically replaces the node's owned object set with exactly
// owned (a subset of the known universe; meta supplies metadata for
// objects born after this node spawned, so a fresh shard can take
// ownership of newborns it has never seen). A fresh policy is built
// from Config.PolicyFactory and initialized over the new universe;
// resident objects still owned are adopted warm (core.Warmable),
// everything else is discarded. It returns how many cached objects
// survived and how many were dropped.
//
// Residency optimism carries over: an object whose load is still in
// flight at swap time is adopted as resident; if that load ultimately
// fails, the rollback leaves the new policy believing the object is
// cached — the same divergence a failed load always causes here.
func (m *Middleware) Reshard(epoch int, owned []model.ObjectID, meta []model.Object) (resident, dropped int, err error) {
	if m.cfg.PolicyFactory == nil {
		return 0, 0, fmt.Errorf("cache: no policy factory configured; live reshard unavailable")
	}
	m.mu.Lock()
	for _, o := range meta {
		if !m.byID.has(o.ID) {
			m.byID.put(o)
		}
	}
	want := newIDSet(len(owned))
	universe := make([]model.Object, 0, len(owned))
	for _, id := range owned {
		o, ok := m.byID.get(id)
		if !ok {
			m.mu.Unlock()
			return 0, 0, fmt.Errorf("cache: reshard names object %d outside the known universe", id)
		}
		if want.has(id) {
			continue
		}
		want.add(id)
		universe = append(universe, o)
	}
	m.mu.Unlock()
	if len(universe) == 0 {
		return 0, 0, fmt.Errorf("cache: reshard leaves the node with no objects")
	}
	capacity := m.cfg.Capacity
	if m.cfg.ReshardCapacity != nil {
		capacity = m.cfg.ReshardCapacity(universe)
	}
	policy := m.cfg.PolicyFactory()
	if policy == nil {
		return 0, 0, fmt.Errorf("cache: policy factory returned nil")
	}
	if err := policy.Init(universe, capacity); err != nil {
		return 0, 0, fmt.Errorf("cache: reshard init: %w", err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Reject frames from a superseded resize: a reshard that timed out
	// router-side can still arrive late, and applying it would clobber
	// the owned set a newer epoch installed. Widen and narrow share an
	// epoch, so equality is allowed.
	if epoch < m.reshardEpoch {
		return 0, 0, fmt.Errorf("cache: reshard for epoch %d superseded by epoch %d", epoch, m.reshardEpoch)
	}
	m.reshardEpoch = epoch
	carried := make([]model.ObjectID, 0, len(m.resident))
	for id := range m.resident {
		if want.has(id) {
			carried = append(carried, id)
		}
	}
	slices.Sort(carried) // deterministic adoption order under capacity pressure
	var adopted []model.ObjectID
	if w, ok := policy.(core.Warmable); ok {
		adopted, err = w.Warm(carried)
		if err != nil {
			return 0, 0, fmt.Errorf("cache: reshard warm: %w", err)
		}
	}
	dropped = len(m.resident) - len(adopted)
	m.resident = make(map[model.ObjectID]struct{}, len(adopted))
	for _, id := range adopted {
		m.resident[id] = struct{}{}
	}
	m.policy = policy
	m.owned = want
	m.cfg.Logf("reshard epoch %d: %d objects owned, %d resident carried, %d dropped (capacity %v)",
		epoch, want.len(), len(adopted), dropped, capacity)
	return len(adopted), dropped, nil
}

// handleReshard serves MsgReshard: the router's filter-swap command. A
// successful swap snapshots immediately — the owned set and epoch just
// changed wholesale, and a crash replaying a pre-reshard journal onto a
// pre-reshard snapshot would resurrect state the router re-homed.
func (m *Middleware) handleReshard(body netproto.ReshardMsg) (netproto.Frame, error) {
	resident, droppedCount, err := m.Reshard(body.Epoch, body.Owned, body.Universe)
	if err != nil {
		return netproto.Frame{}, err
	}
	if body.Replicas > 0 {
		// The recut ownership's replication factor, so stats keep
		// reporting the deployed K after a resize (0 = an older router
		// that predates the field; keep the configured value).
		m.replicas.Store(int64(body.Replicas))
	}
	m.snapshotNow()
	return netproto.Frame{Type: netproto.MsgReshard, Body: netproto.ReshardMsg{
		Epoch:    body.Epoch,
		Resident: resident,
		Dropped:  droppedCount,
		Replicas: body.Replicas,
	}}, nil
}

// handleMigrateOut serves MsgMigrateBegin: stream the cached state of
// the requested objects to the destination shard. Only the resident
// subset travels — the destination loads the rest cold on first use.
// The residency snapshot is taken under the lock; the streaming runs
// outside it on a dedicated session to the destination.
func (m *Middleware) handleMigrateOut(ctx context.Context, body netproto.MigrateBeginMsg) (netproto.Frame, error) {
	if body.Dest == "" {
		return netproto.Frame{}, fmt.Errorf("cache: migrate-begin without destination")
	}
	m.mu.Lock()
	objs := make([]model.Object, 0, len(body.Objects))
	for _, id := range body.Objects {
		if _, ok := m.resident[id]; !ok {
			continue
		}
		if obj, ok := m.byID.get(id); ok {
			objs = append(objs, obj)
		}
	}
	m.mu.Unlock()

	summary := netproto.MigrateBeginMsg{Epoch: body.Epoch, Dest: body.Dest}
	if len(objs) == 0 {
		return netproto.Frame{Type: netproto.MsgMigrateBegin, Body: summary}, nil
	}

	sess, err := netproto.DialSession(body.Dest, "cache", netproto.SessionConfig{PoolSize: 1})
	if err != nil {
		return netproto.Frame{}, fmt.Errorf("cache: migrate dial %s: %w", body.Dest, err)
	}
	defer sess.Close()

	var chunk []netproto.MigratedObject
	var chunkPayload int
	var imported int64
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		ctx, cancel := context.WithTimeout(ctx, migrateRoundTripTimeout)
		defer cancel()
		reply, err := sess.RoundTrip(ctx, netproto.Frame{
			Type: netproto.MsgMigrateChunk,
			Body: netproto.MigrateChunkMsg{Epoch: body.Epoch, Objects: chunk},
		})
		if err != nil {
			return fmt.Errorf("cache: migrate chunk to %s: %w", body.Dest, err)
		}
		ack, ok := reply.Body.(netproto.MigrateChunkMsg)
		if !ok {
			return fmt.Errorf("cache: %s replied %s to migrate chunk", body.Dest, reply.Type)
		}
		imported += int64(ack.Imported)
		chunk, chunkPayload = nil, 0
		return nil
	}
	for _, obj := range objs {
		payload := netproto.MakePayload(m.cfg.Scale, obj.Size, int64(obj.ID))
		if len(chunk) >= migrateChunkObjects || chunkPayload+len(payload) > migrateChunkPayload {
			if err := flush(); err != nil {
				return netproto.Frame{}, err
			}
		}
		chunk = append(chunk, netproto.MigratedObject{Object: obj, Payload: payload})
		chunkPayload += len(payload)
		summary.Moved++
		summary.MovedBytes += obj.Size
	}
	if err := flush(); err != nil {
		return netproto.Frame{}, err
	}
	{
		ctx, cancel := context.WithTimeout(ctx, migrateRoundTripTimeout)
		defer cancel()
		if _, err := sess.RoundTrip(ctx, netproto.Frame{
			Type: netproto.MsgMigrateDone,
			Body: netproto.MigrateDoneMsg{Epoch: body.Epoch, Sent: summary.Moved, Imported: imported},
		}); err != nil {
			return netproto.Frame{}, fmt.Errorf("cache: migrate done to %s: %w", body.Dest, err)
		}
	}
	m.migratedOut.Add(summary.Moved)
	m.cfg.Logf("migrated %d objects (%v) to %s for epoch %d",
		summary.Moved, summary.MovedBytes, body.Dest, body.Epoch)
	return netproto.Frame{Type: netproto.MsgMigrateBegin, Body: summary}, nil
}

// handleMigrateChunk serves MsgMigrateChunk: adopt migrated objects we
// own and do not already hold. Objects the policy declines (capacity,
// or a policy that cannot warm) are skipped, not failed — they load
// cold later, which costs traffic but never correctness.
func (m *Middleware) handleMigrateChunk(body netproto.MigrateChunkMsg) (netproto.Frame, error) {
	imported := 0
	var adoptedIDs []model.ObjectID
	m.mu.Lock()
	for _, mo := range body.Objects {
		id := mo.Object.ID
		if !m.byID.has(id) {
			// A migrated newborn this node has not met yet: the chunk
			// carries full metadata, so register it before adoption.
			m.byID.put(mo.Object)
		}
		if m.owned != nil && !m.owned.has(id) {
			continue
		}
		if _, dup := m.resident[id]; dup {
			continue
		}
		w, ok := m.policy.(core.Warmable)
		if !ok {
			break
		}
		adopted, err := w.Warm([]model.ObjectID{id})
		if err != nil || len(adopted) == 0 {
			if err != nil {
				m.cfg.Logf("migrate-in object %d: %v", id, err)
			}
			continue
		}
		m.resident[id] = struct{}{}
		adoptedIDs = append(adoptedIDs, id)
		imported++
	}
	m.mu.Unlock()
	if m.store != nil {
		for _, id := range adoptedIDs {
			if err := m.store.AppendAdmit(id); err != nil {
				m.cfg.Logf("journal migrated admit %d: %v", id, err)
				break
			}
		}
	}
	m.migratedIn.Add(int64(imported))
	return netproto.Frame{Type: netproto.MsgMigrateChunk, Body: netproto.MigrateChunkMsg{
		Epoch:    body.Epoch,
		Imported: imported,
	}}, nil
}

// sumSizes totals a universe's object sizes — the replicated-shape
// capacity helper reshard-capable deployments use.
func sumSizes(objs []model.Object) cost.Bytes {
	var total cost.Bytes
	for _, o := range objs {
		total += o.Size
	}
	return total
}

// ReplicatedCapacity is a ReshardCapacity that sizes the node to hold
// its entire owned universe (the replicated-cluster shape tests and
// benchmarks use).
func ReplicatedCapacity(owned []model.Object) cost.Bytes { return sumSizes(owned) }

// FractionalCapacity returns a ReshardCapacity that sizes the node to
// a fixed fraction of its owned universe.
func FractionalCapacity(frac float64) func([]model.Object) cost.Bytes {
	return func(owned []model.Object) cost.Bytes {
		return cost.Bytes(float64(sumSizes(owned)) * frac)
	}
}
