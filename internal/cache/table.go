package cache

import (
	"iter"
	"math/bits"

	"github.com/deltacache/delta/internal/model"
)

// denseSlack bounds how far past the current dense range an ID may
// land and still be stored densely: survey IDs are sequential (1..N,
// births continuing the sequence), so growth arrives in small
// increments, while a wildly out-of-range ID (a disagreeing router,
// a corrupt frame) must not force a gigantic allocation.
const denseSlack = 65536

// objectTable indexes the node's known object universe by ID. Survey
// universes carry dense sequential IDs, so the primary store is a
// slice indexed by id−1 — 24 bytes per object instead of a map entry,
// which at a million objects per shard was the largest single
// allocation in the cluster soak. A zero stored ID marks absence;
// IDs outside the dense range overflow into a map.
type objectTable struct {
	dense  []model.Object
	sparse map[model.ObjectID]model.Object
	n      int
}

func newObjectTable(capacity int) *objectTable {
	return &objectTable{dense: make([]model.Object, 0, capacity)}
}

// grow extends the dense range to at least want slots, migrating any
// sparse entries the new range absorbs (the invariant is that sparse
// holds only IDs beyond the dense range).
func (t *objectTable) grow(want int) {
	if want <= len(t.dense) {
		return
	}
	t.dense = append(t.dense, make([]model.Object, want-len(t.dense))...)
	for id, o := range t.sparse {
		if idx := int(id) - 1; idx >= 0 && idx < len(t.dense) {
			t.dense[idx] = o
			delete(t.sparse, id)
		}
	}
}

func (t *objectTable) put(o model.Object) {
	idx := int(o.ID) - 1
	if idx >= 0 && idx >= len(t.dense) && idx < len(t.dense)+denseSlack {
		t.grow(idx + 1)
	}
	if idx >= 0 && idx < len(t.dense) {
		if t.dense[idx].ID == 0 {
			t.n++
		}
		t.dense[idx] = o
		return
	}
	if t.sparse == nil {
		t.sparse = make(map[model.ObjectID]model.Object)
	}
	if _, dup := t.sparse[o.ID]; !dup {
		t.n++
	}
	t.sparse[o.ID] = o
}

func (t *objectTable) get(id model.ObjectID) (model.Object, bool) {
	if idx := int(id) - 1; idx >= 0 && idx < len(t.dense) {
		if t.dense[idx].ID == 0 {
			return model.Object{}, false
		}
		return t.dense[idx], true
	}
	o, ok := t.sparse[id]
	return o, ok
}

func (t *objectTable) has(id model.ObjectID) bool {
	_, ok := t.get(id)
	return ok
}

func (t *objectTable) len() int { return t.n }

// all yields every known object, dense range first in ascending ID
// order, then sparse overflow in map order.
func (t *objectTable) all() iter.Seq[model.Object] {
	return func(yield func(model.Object) bool) {
		for i := range t.dense {
			if t.dense[i].ID == 0 {
				continue
			}
			if !yield(t.dense[i]) {
				return
			}
		}
		for _, o := range t.sparse {
			if !yield(o) {
				return
			}
		}
	}
}

// idSet is a set of object IDs with the same dense/sparse split as
// objectTable: a bitset indexed by id−1 (one bit per object — 128 KiB
// for a million-object shard, where the set it replaced cost tens of
// bytes per entry) plus a map for out-of-range IDs.
type idSet struct {
	bits   []uint64
	sparse map[model.ObjectID]struct{}
	n      int
}

func newIDSet(capacity int) *idSet {
	return &idSet{bits: make([]uint64, 0, (capacity+63)/64)}
}

func (s *idSet) grow(words int) {
	if words <= len(s.bits) {
		return
	}
	s.bits = append(s.bits, make([]uint64, words-len(s.bits))...)
	for id := range s.sparse {
		if idx := int(id) - 1; idx >= 0 && idx < len(s.bits)*64 {
			s.bits[idx/64] |= 1 << (idx % 64)
			delete(s.sparse, id)
		}
	}
}

func (s *idSet) add(id model.ObjectID) {
	idx := int(id) - 1
	if idx >= 0 && idx >= len(s.bits)*64 && idx < len(s.bits)*64+denseSlack*64 {
		s.grow(idx/64 + 1)
	}
	if idx >= 0 && idx < len(s.bits)*64 {
		if s.bits[idx/64]&(1<<(idx%64)) == 0 {
			s.n++
		}
		s.bits[idx/64] |= 1 << (idx % 64)
		return
	}
	if s.sparse == nil {
		s.sparse = make(map[model.ObjectID]struct{})
	}
	if _, dup := s.sparse[id]; !dup {
		s.n++
	}
	s.sparse[id] = struct{}{}
}

func (s *idSet) has(id model.ObjectID) bool {
	if idx := int(id) - 1; idx >= 0 && idx < len(s.bits)*64 {
		return s.bits[idx/64]&(1<<(idx%64)) != 0
	}
	_, ok := s.sparse[id]
	return ok
}

func (s *idSet) len() int { return s.n }

// all yields every member, dense range first in ascending order, then
// sparse overflow in map order.
func (s *idSet) all() iter.Seq[model.ObjectID] {
	return func(yield func(model.ObjectID) bool) {
		for w, word := range s.bits {
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				if !yield(model.ObjectID(w*64 + bit + 1)) {
					return
				}
				word &= word - 1
			}
		}
		for id := range s.sparse {
			if !yield(id) {
				return
			}
		}
	}
}
