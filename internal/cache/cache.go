// Package cache implements the Delta middleware node: the service that
// sits close to the clients, accepts their queries, and uses a
// decoupling policy (VCover by default) to decide, per query, whether to
// answer from its local object store, ship outstanding updates first, or
// ship the query to the repository — and, in the background, whether to
// load objects. It subscribes to the repository's invalidation stream so
// its policy sees every update the moment the repository ingests it.
package cache

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// Config parameterizes the middleware.
type Config struct {
	// Addr is the client-facing listen address.
	Addr string
	// RepoAddr is the repository's address.
	RepoAddr string
	// Policy decides; nil defaults to VCover.
	Policy core.Policy
	// Objects is the object universe (must match the repository's).
	Objects []model.Object
	// Capacity is the cache size.
	Capacity cost.Bytes
	// Scale converts logical sizes to physical payloads.
	Scale netproto.PayloadScale
	// SampleRows optionally provides catalog rows so locally answered
	// queries can return result samples like the repository does.
	SampleRows []catalog.Row
	// Logf logs events; nil silences.
	Logf func(format string, args ...any)
}

// Middleware is a running cache node.
type Middleware struct {
	cfg    Config
	ln     net.Listener
	ledger cost.Ledger

	// mu serializes policy decisions and the repository request
	// connection: the decision framework is sequential by design.
	mu       sync.Mutex
	policy   core.Policy
	repo     *netproto.Conn
	repoRaw  net.Conn
	invRaw   net.Conn
	resident map[model.ObjectID]struct{}

	queries int64
	atCache int64
	shipped int64

	wg     sync.WaitGroup
	closed bool
}

// New builds the middleware, connects it to the repository, initializes
// the policy and subscribes to invalidations.
func New(cfg Config) (*Middleware, error) {
	if cfg.RepoAddr == "" {
		return nil, fmt.Errorf("cache: repository address required")
	}
	if len(cfg.Objects) == 0 {
		return nil, fmt.Errorf("cache: object universe required")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Policy == nil {
		cfg.Policy = core.NewVCover(core.DefaultVCoverConfig())
	}
	m := &Middleware{
		cfg:      cfg,
		policy:   cfg.Policy,
		resident: make(map[model.ObjectID]struct{}),
	}
	if err := m.policy.Init(cfg.Objects, cfg.Capacity); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}

	// Request/response channel to the repository.
	rc, err := net.Dial("tcp", cfg.RepoAddr)
	if err != nil {
		return nil, fmt.Errorf("cache: dial repository: %w", err)
	}
	m.repoRaw = rc
	m.repo = netproto.NewConn(rc)
	if err := m.repo.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "cache"}}); err != nil {
		rc.Close()
		return nil, fmt.Errorf("cache: hello: %w", err)
	}

	// Invalidation subscription.
	ic, err := net.Dial("tcp", cfg.RepoAddr)
	if err != nil {
		rc.Close()
		return nil, fmt.Errorf("cache: dial invalidations: %w", err)
	}
	m.invRaw = ic
	invConn := netproto.NewConn(ic)
	if err := invConn.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "invalidations"}}); err != nil {
		rc.Close()
		ic.Close()
		return nil, fmt.Errorf("cache: subscribe: %w", err)
	}
	m.wg.Add(1)
	go m.invalidationLoop(invConn)

	// Apply any preload the policy requests (Replica/SOptimal).
	if pre, ok := m.policy.(core.Preloader); ok {
		objs, charge := pre.Preload()
		for _, id := range objs {
			if err := m.loadObjectLocked(id, charge); err != nil {
				rc.Close()
				ic.Close()
				return nil, fmt.Errorf("cache: preload %d: %w", id, err)
			}
		}
	}
	return m, nil
}

// Start begins serving clients.
func (m *Middleware) Start() error {
	ln, err := net.Listen("tcp", m.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cache: listen: %w", err)
	}
	m.ln = ln
	m.wg.Add(1)
	go m.acceptLoop()
	m.cfg.Logf("cache listening on %s (policy %s)", ln.Addr(), m.policy.Name())
	return nil
}

// Addr returns the client-facing address (after Start).
func (m *Middleware) Addr() string { return m.ln.Addr().String() }

// Ledger returns a snapshot of the cache's traffic accounting.
func (m *Middleware) Ledger() cost.Snapshot { return m.ledger.Snapshot() }

// Stats returns a stats message describing the node.
func (m *Middleware) Stats() netproto.StatsMsg {
	m.mu.Lock()
	defer m.mu.Unlock()
	cached := make([]model.ObjectID, 0, len(m.resident))
	for id := range m.resident {
		cached = append(cached, id)
	}
	sortIDs(cached)
	return netproto.StatsMsg{
		Ledger:  m.ledger.Snapshot(),
		Cached:  cached,
		Policy:  m.policy.Name(),
		Queries: m.queries,
		AtCache: m.atCache,
		Shipped: m.shipped,
	}
}

// Close shuts the middleware down.
func (m *Middleware) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	var err error
	if m.ln != nil {
		err = m.ln.Close()
	}
	m.repoRaw.Close()
	m.invRaw.Close()
	m.wg.Wait()
	return err
}

func (m *Middleware) invalidationLoop(c *netproto.Conn) {
	defer m.wg.Done()
	for {
		f, err := c.Recv()
		if err != nil {
			return
		}
		inv, ok := f.Body.(netproto.InvalidateMsg)
		if !ok {
			m.cfg.Logf("invalidation stream sent %s", f.Type)
			continue
		}
		m.mu.Lock()
		d, err := m.policy.OnUpdate(&inv.Update)
		if err != nil {
			m.cfg.Logf("policy OnUpdate: %v", err)
			m.mu.Unlock()
			continue
		}
		if err := m.applyDecisionLocked(d, nil); err != nil {
			m.cfg.Logf("apply update decision: %v", err)
		}
		m.mu.Unlock()
	}
}

func (m *Middleware) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer conn.Close()
			if err := m.serveClient(netproto.NewConn(conn)); err != nil {
				m.cfg.Logf("client %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (m *Middleware) serveClient(c *netproto.Conn) error {
	first, err := c.Recv()
	if err != nil {
		return ignoreEOF(err)
	}
	if first.Type != netproto.MsgHello {
		return fmt.Errorf("cache: expected hello, got %s", first.Type)
	}
	for {
		f, err := c.Recv()
		if err != nil {
			return ignoreEOF(err)
		}
		q, ok := f.Body.(netproto.QueryMsg)
		if !ok {
			if f.Type == netproto.MsgStats {
				if err := c.Send(netproto.Frame{Type: netproto.MsgStats, Body: m.Stats()}); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("cache: client sent %s", f.Type)
		}
		reply := m.handleQuery(&q.Query)
		if err := c.Send(reply); err != nil {
			return ignoreEOF(err)
		}
	}
}

func (m *Middleware) handleQuery(q *model.Query) netproto.Frame {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	d, err := m.policy.OnQuery(q)
	if err != nil {
		return errorFrame("policy: %v", err)
	}
	var result netproto.QueryResultMsg
	if err := m.applyDecisionLocked(d, &result); err != nil {
		return errorFrame("apply: %v", err)
	}
	if d.ShipQuery {
		m.shipped++
		reply, err := m.roundTripLocked(netproto.Frame{Type: netproto.MsgQuery, Body: netproto.QueryMsg{Query: *q}})
		if err != nil {
			return errorFrame("ship query: %v", err)
		}
		res, ok := reply.Body.(netproto.QueryResultMsg)
		if !ok {
			return errorFrame("repository replied %s", reply.Type)
		}
		m.ledger.Charge(cost.QueryShip, q.Cost)
		res.Elapsed = time.Since(start)
		return netproto.Frame{Type: netproto.MsgQueryResult, Body: res}
	}
	m.atCache++
	result.QueryID = q.ID
	result.Logical = q.Cost
	result.Source = "cache"
	result.Rows = m.sampleRowsFor(q.Objects)
	result.Payload = netproto.MakePayload(m.cfg.Scale, q.Cost, int64(q.ID))
	result.Elapsed = time.Since(start)
	return netproto.Frame{Type: netproto.MsgQueryResult, Body: result}
}

// applyDecisionLocked executes a decision's evictions, loads and update
// shipments against the repository. mu must be held.
func (m *Middleware) applyDecisionLocked(d core.Decision, _ *netproto.QueryResultMsg) error {
	for _, id := range d.Evict {
		if _, ok := m.resident[id]; !ok {
			return fmt.Errorf("evict of non-resident object %d", id)
		}
		delete(m.resident, id)
	}
	for _, id := range d.Load {
		if err := m.loadObjectLocked(id, true); err != nil {
			return err
		}
	}
	if len(d.ApplyUpdates) > 0 {
		reply, err := m.roundTripLocked(netproto.Frame{
			Type: netproto.MsgShipUpdates,
			Body: netproto.ShipUpdatesMsg{IDs: d.ApplyUpdates},
		})
		if err != nil {
			return fmt.Errorf("ship updates: %w", err)
		}
		ups, ok := reply.Body.(netproto.UpdatesMsg)
		if !ok {
			return fmt.Errorf("repository replied %s to update shipment", reply.Type)
		}
		var total cost.Bytes
		for _, u := range ups.Updates {
			total += u.Cost
		}
		m.ledger.Charge(cost.UpdateShip, total)
	}
	return nil
}

func (m *Middleware) loadObjectLocked(id model.ObjectID, charge bool) error {
	if _, dup := m.resident[id]; dup {
		return fmt.Errorf("object %d already resident", id)
	}
	reply, err := m.roundTripLocked(netproto.Frame{
		Type: netproto.MsgLoadObject,
		Body: netproto.LoadObjectMsg{Object: id},
	})
	if err != nil {
		return fmt.Errorf("load object %d: %w", id, err)
	}
	data, ok := reply.Body.(netproto.ObjectDataMsg)
	if !ok {
		return fmt.Errorf("repository replied %s to load", reply.Type)
	}
	m.resident[id] = struct{}{}
	if charge {
		m.ledger.Charge(cost.ObjectLoad, data.Object.Size)
	}
	return nil
}

func (m *Middleware) roundTripLocked(f netproto.Frame) (netproto.Frame, error) {
	if err := m.repo.Send(f); err != nil {
		return netproto.Frame{}, err
	}
	reply, err := m.repo.Recv()
	if err != nil {
		return netproto.Frame{}, err
	}
	if e, ok := reply.Body.(netproto.ErrorMsg); ok {
		return netproto.Frame{}, errors.New(e.Message)
	}
	return reply, nil
}

// sampleRowsFor returns demo rows for locally answered queries.
func (m *Middleware) sampleRowsFor(objs []model.ObjectID) []netproto.ResultRow {
	if len(m.cfg.SampleRows) == 0 {
		return nil
	}
	want := make(map[model.ObjectID]struct{}, len(objs))
	for _, id := range objs {
		want[id] = struct{}{}
	}
	var rows []netproto.ResultRow
	for _, row := range m.cfg.SampleRows {
		if _, ok := want[row.Object]; !ok {
			continue
		}
		rows = append(rows, netproto.ResultRow{
			ObjID: row.ObjID, RA: row.RA, Dec: row.Dec, R: row.R,
		})
		if len(rows) >= 8 {
			break
		}
	}
	return rows
}

func errorFrame(format string, args ...any) netproto.Frame {
	return netproto.Frame{Type: netproto.MsgError, Body: netproto.ErrorMsg{
		Message: fmt.Sprintf(format, args...),
	}}
}

func ignoreEOF(err error) error {
	if err == nil || errors.Is(err, net.ErrClosed) || err.Error() == "EOF" {
		return nil
	}
	return err
}

func sortIDs(ids []model.ObjectID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
