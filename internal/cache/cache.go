// Package cache implements the Delta middleware node: the service that
// sits close to the clients, accepts their queries, and uses a
// decoupling policy (VCover by default) to decide, per query, whether to
// answer from its local object store, ship outstanding updates first, or
// ship the query to the repository — and, in the background, whether to
// load objects. It subscribes to the repository's invalidation stream so
// its policy sees every update the moment the repository ingests it.
//
// Concurrency model: the policy's decision framework is sequential by
// design, so OnQuery/OnUpdate and the residency bookkeeping they imply
// run under one mutex — but that critical section contains no network
// I/O. Query shipping, update shipping and object loads all execute
// outside the lock on a multiplexed repository session (a small
// connection pool with RequestID demultiplexing), with per-object
// singleflight so concurrent queries that need the same object trigger
// one load. Client connections speaking protocol v2 get a worker
// goroutine per request, so a query stalled on an object load never
// head-of-line-blocks its neighbors.
package cache

import (
	"cmp"
	"context"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/clock"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/htm"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/obs"
	"github.com/deltacache/delta/internal/persist"
)

// Config parameterizes the middleware.
type Config struct {
	// Addr is the client-facing listen address.
	Addr string
	// RepoAddr is the repository's address.
	RepoAddr string
	// RepoPool is how many connections back the repository session
	// (each one multiplexes; 0 means a small default).
	RepoPool int
	// RepoDialRetry keeps retrying a refused repository connection
	// for this long with backoff (a cache often starts alongside its
	// repository). Zero means a 5s default; negative disables.
	RepoDialRetry time.Duration
	// Policy decides; nil defaults to VCover (built via PolicyFactory
	// when that is set).
	Policy core.Policy
	// PolicyFactory builds a fresh policy instance for a resharded
	// universe: a live cluster resize swaps the node's policy
	// wholesale (the decision framework is Init-once by design), so a
	// node must know how to construct a new one. Nil disables live
	// resharding for this node. When Policy is nil and PolicyFactory
	// is set, the initial policy also comes from the factory.
	PolicyFactory func() core.Policy
	// Objects is the object universe (must match the repository's).
	Objects []model.Object
	// ObjectFilter, when non-nil, restricts this node to the objects
	// it owns: Objects is filtered through it before the policy sees
	// the universe, so a cluster shard's policy only reasons about
	// owned objects, and queries touching unowned objects are
	// rejected (they indicate a routing bug). Nil means the node owns
	// everything (the single-cache deployment).
	ObjectFilter func(model.ObjectID) bool
	// Capacity is the cache size.
	Capacity cost.Bytes
	// ReshardCapacity recomputes the node's capacity for a new owned
	// universe during a live reshard (e.g. a fixed fraction of the
	// owned data, or exactly its size for the replicated shape). Nil
	// keeps Capacity fixed across reshards.
	ReshardCapacity func(owned []model.Object) cost.Bytes
	// Replicas is the replication factor K the node serves under — how
	// many shards hold each object it owns. Informational: the
	// ownership math lives in the router's cluster.Ownership and
	// reaches the node through ObjectFilter/reshard frames; this value
	// surfaces in StatsMsg so operators and clients can audit the
	// deployed K. 0 is treated as 1 (unreplicated).
	Replicas int
	// Scale converts logical sizes to physical payloads.
	Scale netproto.PayloadScale
	// SampleRows optionally provides catalog rows so locally answered
	// queries can return result samples like the repository does.
	SampleRows []catalog.Row
	// Serialized restores the seed's fully serialized handling — one
	// global lock around each query including its repository I/O. It
	// exists as the baseline for the concurrency benchmarks and as a
	// debugging aid; leave it false in deployments.
	Serialized bool
	// ExecDelay simulates the node-local scan time of a query answered
	// at the cache (the paper's cache runs real database scans; a
	// loopback deployment answers in microseconds). The delay holds a
	// dedicated per-node execution lock, modeling one serial execution
	// resource per cache node — which is what makes sharded-cluster
	// scaling measurable on one machine. Zero disables.
	ExecDelay time.Duration
	// Clock paces ExecDelay; nil means the wall clock. Tests inject a
	// fake clock so simulated scan time costs no real time.
	Clock clock.Clock
	// Resolver maps a sky cap to the object IDs whose partitions may
	// intersect it (typically catalog.Survey.CoverCap). When set,
	// queries arriving with a SkyRegion instead of an object list are
	// resolved here, memoized through a bounded cover cache whose
	// hit/miss counters surface in StatsMsg. Nil rejects region
	// queries. Cluster shards must leave it nil: a shard resolves
	// against the whole sky but owns a subset, so every region query
	// would die on the ownership check — regions resolve at the
	// router.
	Resolver func(geom.Cap) []model.ObjectID
	// ResolverGrow feeds adopted births into the resolver's universe
	// (typically wrapping catalog.Survey.AddObject on the same survey
	// backing Resolver), so sky-region covers include live-born
	// objects. Without it, a resolver built from the startup survey
	// would silently exclude newborns from every region forever.
	// Required when Resolver is set on a node that can grow.
	ResolverGrow func([]model.Birth) error
	// WireVersion caps the protocol version this node negotiates, on
	// both sides: the version announced to the repository and the
	// version granted to clients (0 = newest, i.e. the v3 binary
	// codec; 2 pins gob v2) — the -wire-version escape hatch.
	WireVersion int
	// DataDir, when set, enables the durability layer (internal/persist):
	// the node journals births and admission/eviction decisions, writes
	// periodic snapshots of its warm state, and on startup replays
	// snapshot+journal to rejoin warm — the policy is rebuilt over the
	// persisted universe and residents are re-adopted through the same
	// core.Warmable boundary a live reshard uses, re-validated against
	// current ownership so a node restarted into a resized cluster
	// drops no-longer-owned state. Empty disables persistence.
	DataDir string
	// SnapshotInterval paces the periodic snapshot loop when DataDir is
	// set (0 = 30s default). Snapshots are also written after every
	// reshard and on Close, so the interval only bounds how much journal
	// a crash replays.
	SnapshotInterval time.Duration
	// MetricsAddr, when set, binds the node's debug HTTP endpoint
	// (/metrics, /healthz, /debug/traces, /debug/pprof) on Start — the
	// -metrics-addr flag. Empty disables the listener; metrics and
	// traces are still collected unless DisableObs is set.
	MetricsAddr string
	// DisableObs turns off all metric and trace collection (nil
	// registry, nil ring): the baseline BenchmarkObsOverhead compares
	// against.
	DisableObs bool
	// Logf logs events; nil silences.
	Logf func(format string, args ...any)
}

// Middleware is a running cache node.
type Middleware struct {
	cfg    Config
	ln     net.Listener
	ledger cost.Ledger
	repo   *netproto.Session

	// mu guards the policy, the residency map, the owned set and the
	// reshard epoch (all swapped together by a live reshard). The
	// decision framework is sequential by design; network I/O never
	// happens under this lock.
	mu       sync.Mutex
	policy   core.Policy
	resident map[model.ObjectID]struct{}
	// reshardEpoch is the newest routing epoch this node has resharded
	// for; older MsgReshard frames (delayed retries from a superseded
	// resize) are rejected instead of clobbering newer state.
	reshardEpoch int

	// serialMu implements Config.Serialized (benchmark baseline).
	serialMu sync.Mutex

	// execMu implements Config.ExecDelay: one serial execution
	// resource per node.
	execMu sync.Mutex

	// owned is the filtered object universe (nil when the node owns
	// everything); guarded by mu since reshards replace it live.
	owned *idSet
	// byID indexes the known universe for reshard and migration
	// lookups; guarded by mu since births and reshard metadata extend
	// it live.
	byID *objectTable

	loads loadGroup

	// covers memoizes Resolver lookups (nil when no Resolver is set).
	covers *htm.CoverCache

	// store is the durability layer (nil when Config.DataDir is empty);
	// births holds every adopted birth in publication order (guarded by
	// mu) so snapshots carry full-fidelity growth for the next restart.
	store  *persist.Store
	births []model.Birth
	// stop ends the snapshot loop on Close.
	stop chan struct{}

	queries       atomic.Int64
	atCache       atomic.Int64
	shipped       atomic.Int64
	droppedInv    atomic.Int64
	dedupLoads    atomic.Int64
	migratedIn    atomic.Int64
	migratedOut   atomic.Int64
	bornObjects   atomic.Int64
	recoveredWarm atomic.Int64
	replicas      atomic.Int64 // deployed replication factor K (≥ 1)

	// Observability (all nil under Config.DisableObs; every use is
	// nil-safe).
	reg      *obs.Registry
	traces   *obs.TraceRing
	debug    *obs.DebugServer
	queryLat *obs.Histogram
	loadLat  *obs.Histogram
	fsyncLat *obs.Histogram

	invRaw net.Conn
	wg     sync.WaitGroup

	// connMu guards the accepted-connection set so Close can sever
	// live clients (a dead shard must not linger because a router
	// still holds a session to it).
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
}

// plan lists the repository I/O a committed decision still owes, plus
// the residency changes it already applied (for the durability journal).
type plan struct {
	loads       []pendingLoad
	evicts      []model.ObjectID
	shipUpdates []model.UpdateID
}

// pendingLoad is a load flight registered at commit time (so
// loadGroup.wait can find it the moment residency becomes visible);
// leader marks the plan that must actually run it.
type pendingLoad struct {
	id     model.ObjectID
	charge bool
	call   *loadCall
	leader bool
}

// New builds the middleware, connects it to the repository, initializes
// the policy and subscribes to invalidations.
func New(cfg Config) (*Middleware, error) {
	if cfg.RepoAddr == "" {
		return nil, fmt.Errorf("cache: repository address required")
	}
	if len(cfg.Objects) == 0 {
		return nil, fmt.Errorf("cache: object universe required")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.RepoPool <= 0 {
		cfg.RepoPool = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.Policy == nil {
		if cfg.PolicyFactory != nil {
			cfg.Policy = cfg.PolicyFactory()
		}
		if cfg.Policy == nil {
			cfg.Policy = core.NewVCover(core.DefaultVCoverConfig())
		}
	}
	m := &Middleware{
		cfg:      cfg,
		policy:   cfg.Policy,
		resident: make(map[model.ObjectID]struct{}),
		conns:    make(map[net.Conn]struct{}),
		byID:     newObjectTable(len(cfg.Objects)),
		stop:     make(chan struct{}),
	}
	m.replicas.Store(int64(max(cfg.Replicas, 1)))
	if cfg.Resolver != nil {
		m.covers = htm.NewCoverCache(256)
	}
	if !cfg.DisableObs {
		m.reg = obs.NewRegistry()
		m.traces = obs.NewTraceRing(0)
		m.queryLat = m.reg.NewHistogram("delta_query_seconds",
			"End-to-end query handling latency at this cache node (fragment or whole query).", nil)
		m.loadLat = m.reg.NewHistogram("delta_load_seconds",
			"Repository object-load round-trip latency.", nil)
		m.fsyncLat = m.reg.NewHistogram("delta_journal_fsync_seconds",
			"Durability journal fsync latency.", nil)
		obs.RegisterStats(m.reg, func() (netproto.StatsMsg, error) { return m.Stats(), nil })
	}
	for _, o := range cfg.Objects {
		m.byID.put(o)
	}

	// Recover the previous incarnation's state before the policy sees
	// any universe: born objects the static config cannot rebuild must
	// be part of what Init reasons about, and residents re-adopt through
	// core.Warmable, which only works on a freshly initialized policy
	// (the same contract a live reshard relies on).
	var recovered *persist.State
	if cfg.DataDir != "" {
		store, err := persist.Open(persist.Options{
			Dir:         cfg.DataDir,
			Logf:        cfg.Logf,
			SyncObserve: m.fsyncLat.Observe,
		})
		if err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		m.store = store
		if recovered, err = store.Recover(); err != nil {
			store.Close()
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	// Universe metadata beyond the static config: born objects and
	// reshard/migration arrivals from the persisted state. Everything
	// merges into byID (reshard lookups need the metadata regardless of
	// ownership); only what the node owns joins the policy universe.
	var extras []model.Object
	recoveredOwned := make(map[model.ObjectID]struct{})
	if recovered != nil {
		for _, o := range recovered.Universe {
			if !m.byID.has(o.ID) {
				m.byID.put(o)
				extras = append(extras, o)
			}
		}
		slices.SortFunc(extras, func(a, b model.Object) int { return cmp.Compare(a.ID, b.ID) })
		for _, id := range recovered.Owned {
			recoveredOwned[id] = struct{}{}
		}
	}

	universe := cfg.Objects
	if cfg.ObjectFilter != nil {
		universe = make([]model.Object, 0, len(cfg.Objects))
		m.owned = newIDSet(len(cfg.Objects))
		for _, o := range cfg.Objects {
			if cfg.ObjectFilter(o.ID) {
				universe = append(universe, o)
				m.owned.add(o.ID)
			}
		}
		if len(universe) == 0 {
			m.closeStore()
			return nil, fmt.Errorf("cache: object filter leaves the shard empty")
		}
	}
	for _, o := range extras {
		// Ownership revalidation for recovered objects: the current
		// filter (computed from the current cluster shape) decides, with
		// persisted grants honored for newborns the static filter cannot
		// know — the next reshard from the router settles any remainder.
		if cfg.ObjectFilter != nil {
			_, granted := recoveredOwned[o.ID]
			if !granted && !cfg.ObjectFilter(o.ID) {
				continue
			}
			m.owned.add(o.ID)
		}
		universe = append(universe, o)
	}
	capacity := cfg.Capacity
	if len(extras) > 0 && cfg.ReshardCapacity != nil {
		// The boot capacity was computed over the static universe; a
		// recovered grown universe resizes it the same way a reshard
		// would.
		capacity = cfg.ReshardCapacity(universe)
	}
	if err := m.policy.Init(universe, capacity); err != nil {
		m.closeStore()
		return nil, fmt.Errorf("cache: %w", err)
	}
	if recovered != nil {
		m.adoptRecovered(recovered)
	}
	if m.store != nil {
		// Land the post-recovery truth as the new baseline snapshot (and
		// rotate the journal) before serving anything.
		if err := m.store.WriteSnapshot(m.persistState()); err != nil {
			m.closeStore()
			return nil, fmt.Errorf("cache: %w", err)
		}
	}

	// Multiplexed request/response session to the repository.
	retry := cfg.RepoDialRetry
	if retry == 0 {
		retry = 5 * time.Second
	}
	sess, err := netproto.DialSession(cfg.RepoAddr, "cache", netproto.SessionConfig{
		PoolSize:    cfg.RepoPool,
		DialRetry:   max(retry, 0),
		WireVersion: cfg.WireVersion,
	})
	if err != nil {
		m.closeStore()
		return nil, fmt.Errorf("cache: dial repository: %w", err)
	}
	m.repo = sess

	// Invalidation subscription (a one-way v1 stream).
	ic, err := net.Dial("tcp", cfg.RepoAddr)
	if err != nil {
		sess.Close()
		m.closeStore()
		return nil, fmt.Errorf("cache: dial invalidations: %w", err)
	}
	m.invRaw = ic
	invConn := netproto.NewConn(ic)
	if err := invConn.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "invalidations"}}); err != nil {
		sess.Close()
		ic.Close()
		m.closeStore()
		return nil, fmt.Errorf("cache: subscribe: %w", err)
	}
	m.wg.Add(1)
	go m.invalidationLoop(invConn)

	// Apply any preload the policy requests (Replica/SOptimal).
	if pre, ok := m.policy.(core.Preloader); ok {
		objs, charge := pre.Preload()
		for _, id := range objs {
			if err := m.fetchObject(context.Background(), id, charge); err != nil {
				m.Close()
				return nil, fmt.Errorf("cache: preload %d: %w", id, err)
			}
			m.mu.Lock()
			m.resident[id] = struct{}{}
			m.mu.Unlock()
		}
	}
	if m.store != nil {
		m.wg.Add(1)
		go m.snapshotLoop()
	}
	return m, nil
}

// closeStore releases the persist store on constructor error paths.
func (m *Middleware) closeStore() {
	if m.store != nil {
		m.store.Close()
		m.store = nil
	}
}

// adoptRecovered restores the previous incarnation's warm state onto a
// freshly initialized policy. Residents are re-validated against the
// current universe — ownership included, so a node restarted into a
// resized cluster drops no-longer-owned state here for free — and
// offered through core.Warmable, the same carry-over boundary a live
// reshard uses; the policy adopts what fits its capacity. Policies
// without Warm (SOptimal, NoCache) simply restart cold.
func (m *Middleware) adoptRecovered(st *persist.State) {
	m.reshardEpoch = st.Epoch
	m.births = slices.Clone(st.Births)
	carried := make([]model.ObjectID, 0, len(st.Resident))
	for _, id := range st.Resident {
		if m.owned != nil {
			if !m.owned.has(id) {
				continue
			}
		} else if !m.byID.has(id) {
			continue
		}
		carried = append(carried, id)
	}
	slices.Sort(carried)
	if w, ok := m.policy.(core.Warmable); ok && len(carried) > 0 {
		adopted, err := w.Warm(carried)
		if err != nil {
			m.cfg.Logf("recovery warm-up: %v (restarting cold)", err)
			adopted = nil
		}
		for _, id := range adopted {
			m.resident[id] = struct{}{}
		}
		m.recoveredWarm.Store(int64(len(adopted)))
	}
	if len(st.Births) > 0 && m.covers != nil && m.cfg.ResolverGrow != nil {
		// The resolver was built from the startup survey; recovered
		// births must rejoin its universe or region covers would exclude
		// them until the next live birth.
		if err := m.cfg.ResolverGrow(st.Births); err != nil {
			m.cfg.Logf("recovery resolver growth: %v (region covers may miss recovered newborns)", err)
		}
		m.covers.Bump()
	}
	m.cfg.Logf("recovered warm: epoch %d, %d births, %d/%d residents re-adopted",
		st.Epoch, len(st.Births), len(m.resident), len(st.Resident))
}

// persistState captures the node's durable state under mu.
func (m *Middleware) persistState() *persist.State {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &persist.State{
		Epoch:    m.reshardEpoch,
		Births:   slices.Clone(m.births),
		Universe: make([]model.Object, 0, m.byID.len()),
	}
	for o := range m.byID.all() {
		st.Universe = append(st.Universe, o)
	}
	slices.SortFunc(st.Universe, func(a, b model.Object) int { return cmp.Compare(a.ID, b.ID) })
	if m.owned != nil {
		st.Owned = make([]model.ObjectID, 0, m.owned.len())
		for id := range m.owned.all() {
			st.Owned = append(st.Owned, id)
		}
		slices.Sort(st.Owned)
	}
	st.Resident = make([]model.ObjectID, 0, len(m.resident))
	for id := range m.resident {
		st.Resident = append(st.Resident, id)
	}
	slices.Sort(st.Resident)
	return st
}

// snapshotNow lands a snapshot of the current state; errors are logged,
// not fatal (the journal still protects the delta since the last good
// snapshot).
func (m *Middleware) snapshotNow() {
	if m.store == nil {
		return
	}
	if err := m.store.WriteSnapshot(m.persistState()); err != nil {
		m.cfg.Logf("snapshot: %v", err)
	}
}

// snapshotLoop writes periodic snapshots until Close. The interval only
// bounds journal replay length: reshards and Close snapshot on their
// own.
func (m *Middleware) snapshotLoop() {
	defer m.wg.Done()
	interval := m.cfg.SnapshotInterval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.snapshotNow()
		}
	}
}

// journalPlan records a committed decision's residency changes in the
// durability journal. Admissions are journaled optimistically alongside
// the optimistic residency commit: a load that later fails leaves a
// stale admit behind, which recovery tolerates by design (residency is
// a warmth hint re-validated through Warm, not a durability contract).
// Journal errors are logged and never fail the query.
func (m *Middleware) journalPlan(p plan) {
	if m.store == nil {
		return
	}
	for _, id := range p.evicts {
		if err := m.store.AppendEvict(id); err != nil {
			m.cfg.Logf("journal evict %d: %v", id, err)
			return
		}
	}
	for _, l := range p.loads {
		if !l.leader {
			// The leader's plan already journaled this admit.
			continue
		}
		if err := m.store.AppendAdmit(l.id); err != nil {
			m.cfg.Logf("journal admit %d: %v", l.id, err)
			return
		}
	}
}

// Start begins serving clients.
func (m *Middleware) Start() error {
	ln, err := net.Listen("tcp", m.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cache: listen: %w", err)
	}
	m.ln = ln
	if m.cfg.MetricsAddr != "" {
		dbg, err := obs.ServeDebug(m.cfg.MetricsAddr, m.reg, m.traces)
		if err != nil {
			ln.Close()
			m.ln = nil
			return fmt.Errorf("cache: metrics listen: %w", err)
		}
		m.debug = dbg
		m.cfg.Logf("cache debug endpoint on %s", dbg.Addr())
	}
	m.wg.Add(1)
	go m.acceptLoop()
	m.cfg.Logf("cache listening on %s (policy %s)", ln.Addr(), m.policy.Name())
	return nil
}

// DebugAddr reports the bound debug (metrics) address, or "" when no
// debug endpoint is serving.
func (m *Middleware) DebugAddr() string { return m.debug.Addr() }

// Addr returns the client-facing address, or "" before Start.
func (m *Middleware) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Ledger returns a snapshot of the cache's traffic accounting.
func (m *Middleware) Ledger() cost.Snapshot { return m.ledger.Snapshot() }

// Stats returns a stats message describing the node.
func (m *Middleware) Stats() netproto.StatsMsg {
	m.mu.Lock()
	cached := make([]model.ObjectID, 0, len(m.resident))
	for id := range m.resident {
		cached = append(cached, id)
	}
	policy := m.policy.Name()
	m.mu.Unlock()
	slices.SortFunc(cached, func(a, b model.ObjectID) int { return cmp.Compare(a, b) })
	stats := netproto.StatsMsg{
		Ledger:               m.ledger.Snapshot(),
		Cached:               cached,
		Policy:               policy,
		Queries:              m.queries.Load(),
		AtCache:              m.atCache.Load(),
		Shipped:              m.shipped.Load(),
		DroppedInvalidations: m.droppedInv.Load(),
		DedupedLoads:         m.dedupLoads.Load(),
		MigratedIn:           m.migratedIn.Load(),
		MigratedOut:          m.migratedOut.Load(),
		ObjectsBorn:          m.bornObjects.Load(),
		RecoveredWarm:        m.recoveredWarm.Load(),
		Replicas:             m.replicas.Load(),
	}
	if m.covers != nil {
		stats.CoverCacheHits, stats.CoverCacheMisses = m.covers.Stats()
	}
	if m.store != nil {
		stats.SnapshotAge = m.store.SnapshotAge()
		stats.JournalRecords = m.store.JournalRecords()
	}
	return stats
}

// Close shuts the middleware down, severing live client connections.
// When persistence is enabled, a final snapshot lands before the store
// closes — a clean shutdown (SIGTERM included) never loses warmth to
// the journal window.
func (m *Middleware) Close() error {
	var err error
	if m.ln != nil {
		err = m.ln.Close()
	}
	m.connMu.Lock()
	already := m.closing
	m.closing = true
	for c := range m.conns {
		c.Close()
	}
	m.connMu.Unlock()
	if !already {
		close(m.stop)
	}
	if m.debug != nil {
		m.debug.Close()
	}
	m.repo.Close()
	m.invRaw.Close()
	m.wg.Wait()
	if m.store != nil && !already {
		m.snapshotNow()
		if cerr := m.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// track registers an accepted connection for Close; it reports false
// (and closes the connection) when the middleware is already closing.
func (m *Middleware) track(c net.Conn) bool {
	m.connMu.Lock()
	defer m.connMu.Unlock()
	if m.closing {
		c.Close()
		return false
	}
	m.conns[c] = struct{}{}
	return true
}

func (m *Middleware) untrack(c net.Conn) {
	m.connMu.Lock()
	delete(m.conns, c)
	m.connMu.Unlock()
}

func (m *Middleware) invalidationLoop(c *netproto.Conn) {
	defer m.wg.Done()
	ctx := context.Background()
	for {
		f, err := c.Recv()
		if err != nil {
			return
		}
		if birth, ok := f.Body.(netproto.ObjectBirthMsg); ok {
			m.mu.Lock()
			sharded := m.owned != nil
			m.mu.Unlock()
			if sharded {
				// A cluster shard adopts births only when its router
				// pushes them (MsgObjectBirth request): ownership of a
				// newborn is the router's assignment, not a broadcast.
				continue
			}
			if _, err := m.AddObjects(ctx, birth.Births); err != nil {
				m.droppedInv.Add(1)
				m.cfg.Logf("adopt births: %v", err)
			}
			continue
		}
		inv, ok := f.Body.(netproto.InvalidateMsg)
		if !ok {
			m.cfg.Logf("invalidation stream sent %s", f.Type)
			continue
		}
		m.mu.Lock()
		if m.owned != nil {
			if !m.owned.has(inv.Update.Object) {
				// Another shard's object: the repository's stream
				// carries every update, ownership says this one is not
				// our business (not a drop).
				m.mu.Unlock()
				continue
			}
		}
		d, err := m.policy.OnUpdate(&inv.Update)
		if err != nil {
			m.mu.Unlock()
			m.droppedInv.Add(1)
			m.cfg.Logf("policy OnUpdate: %v", err)
			continue
		}
		p, err := m.commitDecisionLocked(d)
		m.mu.Unlock()
		if err != nil {
			m.droppedInv.Add(1)
			m.cfg.Logf("apply update decision: %v", err)
			continue
		}
		if err := m.executePlan(ctx, p); err != nil {
			m.droppedInv.Add(1)
			m.cfg.Logf("apply update decision: %v", err)
		}
	}
}

func (m *Middleware) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		if !m.track(conn) {
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.untrack(conn)
			defer conn.Close()
			if err := m.serveClient(netproto.NewConn(conn)); err != nil {
				m.cfg.Logf("client %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (m *Middleware) serveClient(c *netproto.Conn) error {
	first, err := c.Recv()
	if err != nil {
		return netproto.IgnoreClosed(err)
	}
	hello, ok := first.Body.(netproto.Hello)
	if !ok || first.Type != netproto.MsgHello {
		return fmt.Errorf("cache: expected hello, got %s", first.Type)
	}
	version, err := netproto.ServeHandshake(c, hello, m.cfg.WireVersion)
	if err != nil {
		return netproto.IgnoreClosed(err)
	}
	if version >= netproto.ProtoV2 {
		return netproto.ServeMux(c, 0, func(f netproto.Frame) netproto.Frame {
			reply, err := m.handleClientFrame(f)
			if err != nil {
				return netproto.ErrorFrame("%v", err)
			}
			return reply
		}, m.cfg.Logf)
	}
	// v1 lockstep compatibility path: replies in request order.
	for {
		f, err := c.Recv()
		if err != nil {
			return netproto.IgnoreClosed(err)
		}
		reply, err := m.handleClientFrame(f)
		if err != nil {
			return err
		}
		if err := c.Send(reply); err != nil {
			return netproto.IgnoreClosed(err)
		}
	}
}

func (m *Middleware) handleClientFrame(f netproto.Frame) (netproto.Frame, error) {
	switch body := f.Body.(type) {
	case netproto.QueryMsg:
		meta := queryMeta{traceID: body.TraceID, shard: -1}
		if len(body.Query.Objects) == 0 && !body.Region.Empty() {
			objs, hit, err := m.resolveRegion(body.Region)
			if err != nil {
				return netproto.Frame{}, err
			}
			body.Query.Objects = objs
			if hit {
				meta.detail = "cover-cache=hit"
			} else {
				meta.detail = "cover-cache=miss"
			}
		}
		return m.handleQuery(context.Background(), &body.Query, meta), nil
	case netproto.ShardQueryMsg:
		// A router-scattered fragment; objects are already restricted
		// to this shard's owned set (handleQuery verifies).
		meta := queryMeta{traceID: body.TraceID, shard: body.Shard, fragments: body.Fragments}
		return m.handleQuery(context.Background(), &body.Query, meta), nil
	case netproto.ObjectBirthMsg:
		return m.handleBirths(context.Background(), body)
	case netproto.BirthGrantMsg:
		return m.handleBirthGrant(context.Background(), body)
	case netproto.StatsMsg:
		return netproto.Frame{Type: netproto.MsgStats, Body: m.Stats()}, nil
	case netproto.ReshardMsg:
		return m.handleReshard(body)
	case netproto.MigrateBeginMsg:
		return m.handleMigrateOut(context.Background(), body)
	case netproto.MigrateChunkMsg:
		return m.handleMigrateChunk(body)
	case netproto.MigrateDoneMsg:
		// The source sums the per-chunk ack counts into Imported; the
		// destination just acknowledges the totals.
		return netproto.Frame{Type: netproto.MsgMigrateDone, Body: body}, nil
	case netproto.ClusterStatsMsg:
		// A cluster-aware client talking to a single cache: answer as
		// a one-shard cluster so DialCluster is transparent both ways.
		stats := m.Stats()
		return netproto.Frame{Type: netproto.MsgClusterStats, Body: netproto.ClusterStatsMsg{
			Shards:    []netproto.ShardStats{{Shard: 0, Addr: m.Addr(), Alive: true, Stats: stats}},
			Aggregate: stats,
		}}, nil
	default:
		return netproto.Frame{}, fmt.Errorf("cache: client sent %s", f.Type)
	}
}

// resolveRegion maps a query's sky region to B(q) through the memoized
// cover cache (also reporting whether the cover was memoized, for the
// trace span). A node with no resolver cannot serve region queries.
func (m *Middleware) resolveRegion(region netproto.SkyRegion) ([]model.ObjectID, bool, error) {
	if m.cfg.Resolver == nil {
		return nil, false, fmt.Errorf("cache: node has no region resolver; send explicit object lists")
	}
	objs, hit := m.covers.ResolveHit(
		geom.CapFromRADec(region.RA, region.Dec, region.RadiusDeg), m.cfg.Resolver)
	if len(objs) == 0 {
		return nil, hit, fmt.Errorf("cache: region (%v, %v, r=%v°) covers no objects",
			region.RA, region.Dec, region.RadiusDeg)
	}
	return objs, hit, nil
}

// queryMeta carries a query's routing and tracing context into
// handleQuery: who we are in the scatter (shard index and width, or a
// direct client query), the trace ID riding the request, and any hop
// detail accumulated before execution (cover-cache resolution).
type queryMeta struct {
	traceID   uint64
	shard     int // receiving shard index; -1 for a direct client query
	fragments int // scatter width the fragment arrived with; 0 direct
	detail    string
}

// span builds this hop's trace span: "fragment" when the query arrived
// through a router scatter, "cache" when it came straight from a
// client.
func (meta *queryMeta) span(node string, objects int, source string, elapsed time.Duration) netproto.TraceSpan {
	name := "cache"
	if meta.shard >= 0 {
		name = "fragment"
	}
	return netproto.TraceSpan{
		Name:      name,
		Node:      node,
		Shard:     meta.shard,
		Fragments: meta.fragments,
		Objects:   objects,
		Source:    source,
		Detail:    meta.detail,
		Elapsed:   elapsed,
	}
}

func (m *Middleware) handleQuery(ctx context.Context, q *model.Query, meta queryMeta) netproto.Frame {
	if m.cfg.Serialized {
		m.serialMu.Lock()
		defer m.serialMu.Unlock()
	}
	start := time.Now()
	m.queries.Add(1)

	// Decision + bookkeeping under the lock; no I/O here. The owned
	// check shares the critical section because a live reshard swaps
	// the owned set and the policy together.
	m.mu.Lock()
	if m.owned != nil {
		for _, id := range q.Objects {
			if !m.owned.has(id) {
				m.mu.Unlock()
				return netproto.ErrorFrame("query %d touches object %d not owned by this shard", q.ID, id)
			}
		}
	}
	d, err := m.policy.OnQuery(q)
	if err != nil {
		m.mu.Unlock()
		return netproto.ErrorFrame("policy: %v", err)
	}
	p, err := m.commitDecisionLocked(d)
	m.mu.Unlock()
	if err != nil {
		return netproto.ErrorFrame("apply: %v", err)
	}

	// Repository I/O outside the lock.
	if err := m.executePlan(ctx, p); err != nil {
		return netproto.ErrorFrame("apply: %v", err)
	}
	if d.ShipQuery {
		m.shipped.Add(1)
		reply, err := m.repo.RoundTrip(ctx, netproto.Frame{
			Type: netproto.MsgQuery,
			Body: netproto.QueryMsg{Query: *q, TraceID: meta.traceID},
		})
		if err != nil {
			return netproto.ErrorFrame("ship query: %v", err)
		}
		res, ok := reply.Body.(netproto.QueryResultMsg)
		if !ok {
			return netproto.ErrorFrame("repository replied %s", reply.Type)
		}
		m.ledger.Charge(cost.QueryShip, q.Cost)
		res.Elapsed = time.Since(start)
		m.queryLat.Observe(res.Elapsed)
		if meta.traceID != 0 {
			// This hop's span leads; the repository's spans (already in
			// res.Spans) nest under it.
			res.TraceID = meta.traceID
			spans := append([]netproto.TraceSpan{
				meta.span(m.Addr(), len(q.Objects), res.Source, res.Elapsed),
			}, res.Spans...)
			res.Spans = spans
			m.traces.Add(meta.traceID, spans)
		}
		return netproto.Frame{Type: netproto.MsgQueryResult, Body: res}
	}
	m.atCache.Add(1)
	// A sibling query may have committed a load of one of our objects
	// that is still materializing; join it so a "cache" answer never
	// outruns the load it depends on.
	for _, id := range q.Objects {
		m.loads.wait(ctx, id)
	}
	if m.cfg.ExecDelay > 0 {
		m.execMu.Lock()
		m.cfg.Clock.Sleep(m.cfg.ExecDelay)
		m.execMu.Unlock()
	}
	var result netproto.QueryResultMsg
	result.QueryID = q.ID
	result.Logical = q.Cost
	result.Source = "cache"
	result.Rows = m.sampleRowsFor(q.Objects)
	payload, release := netproto.NewPayload(m.cfg.Scale, q.Cost, int64(q.ID))
	result.Payload = payload
	result.Elapsed = time.Since(start)
	m.queryLat.Observe(result.Elapsed)
	if meta.traceID != 0 {
		result.TraceID = meta.traceID
		result.Spans = []netproto.TraceSpan{
			meta.span(m.Addr(), len(q.Objects), result.Source, result.Elapsed),
		}
		m.traces.Add(meta.traceID, result.Spans)
	}
	return netproto.Frame{Type: netproto.MsgQueryResult, Body: result, Release: release}
}

// handleBirths serves MsgObjectBirth: publish the births to the
// repository (idempotent — the repository skips births it already
// ingested), then admit them into this node's own universe. A cluster
// router pushes births to their owning shard through this same frame,
// so the adoption half doubles as the ownership grant; the forward
// half is then a no-op round trip that guarantees the repository is
// never behind a node that answers for the newborn.
func (m *Middleware) handleBirths(ctx context.Context, body netproto.ObjectBirthMsg) (netproto.Frame, error) {
	reply, err := m.repo.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgObjectBirth,
		Body: netproto.ObjectBirthMsg{Births: body.Births},
	})
	if err != nil {
		return netproto.Frame{}, fmt.Errorf("cache: publish births: %w", err)
	}
	ack, ok := reply.Body.(netproto.ObjectBirthMsg)
	if !ok {
		return netproto.Frame{}, fmt.Errorf("cache: repository replied %s to births", reply.Type)
	}
	// Adopt the repository's canonical copies (trixel filled in), not
	// the publisher's raw ones, so this node places the newborn from
	// the same metadata every announcement-stream adopter sees. The
	// replied count is the repository's (how many were newly
	// published), which is deterministic — the announcement stream may
	// have adopted them here already.
	if _, err := m.AddObjects(ctx, ack.Births); err != nil {
		return netproto.Frame{}, err
	}
	return netproto.Frame{Type: netproto.MsgObjectBirth, Body: netproto.ObjectBirthMsg{
		Births:   ack.Births,
		Accepted: ack.Accepted,
	}}, nil
}

// handleBirthGrant serves MsgBirthGrant, the router's batched
// ownership grant: admit the whole batch into this shard's universe
// and owned set in one call, with no repository forward — the router
// grants only births the repository has already acknowledged or
// announced, so re-publishing them upstream would be a pure no-op
// round trip (K of them per birth on a replicated cluster). The reply
// reports how many births were newly admitted; grants are idempotent
// against the announcement stream and earlier grants.
func (m *Middleware) handleBirthGrant(ctx context.Context, body netproto.BirthGrantMsg) (netproto.Frame, error) {
	n, err := m.AddObjects(ctx, body.Births)
	if err != nil {
		return netproto.Frame{}, err
	}
	return netproto.Frame{Type: netproto.MsgBirthGrant, Body: netproto.BirthGrantMsg{
		Accepted: n,
		Epoch:    body.Epoch,
	}}, nil
}

// AddObjects admits newly published objects into the node's universe,
// live: the policy's universe extends (core.Grower), the owned set
// grows when the node is a cluster shard (the router pushes a birth
// only to its owning shard), and any immediate decision the policy
// returns (Replica loads newborns) is executed. Births already known
// are skipped, so adoption is idempotent across the announcement
// stream and the router push. Returns how many births were new.
func (m *Middleware) AddObjects(ctx context.Context, births []model.Birth) (int, error) {
	m.mu.Lock()
	fresh := make([]model.Object, 0, len(births))
	freshBirths := make([]model.Birth, 0, len(births))
	for _, b := range births {
		if m.byID.has(b.Object.ID) {
			continue
		}
		fresh = append(fresh, b.Object)
		freshBirths = append(freshBirths, b)
	}
	if len(fresh) == 0 {
		m.mu.Unlock()
		return 0, nil
	}
	grower, ok := m.policy.(core.Grower)
	if !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("cache: policy %s cannot grow its universe", m.policy.Name())
	}
	d, err := grower.AddObjects(fresh)
	if err != nil {
		m.mu.Unlock()
		return 0, fmt.Errorf("cache: policy admit births: %w", err)
	}
	for _, o := range fresh {
		m.byID.put(o)
		if m.owned != nil {
			m.owned.add(o.ID)
		}
	}
	m.births = append(m.births, freshBirths...)
	p, err := m.commitDecisionLocked(d)
	universe := m.byID.len()
	m.mu.Unlock()
	if m.store != nil {
		for _, b := range freshBirths {
			if jerr := m.store.AppendBirth(b); jerr != nil {
				m.cfg.Logf("journal birth %d: %v", b.Object.ID, jerr)
				break
			}
		}
	}
	// The adoption itself is done — the universe extended and the
	// policy knows the newborns — so it counts even if the immediate
	// decision below fails: a retry will correctly dedup against the
	// extended universe, and the counter must agree with it. A failed
	// birth load (Replica) rolls residency back exactly like any
	// failed load.
	m.bornObjects.Add(int64(len(fresh)))
	if m.covers != nil {
		// Extend the resolver's universe first, then drop memoized
		// covers: a newborn can join any region's cover, and a recompute
		// against the pre-growth resolver would just re-memoize its
		// absence.
		if m.cfg.ResolverGrow != nil {
			if err := m.cfg.ResolverGrow(freshBirths); err != nil {
				m.cfg.Logf("resolver growth: %v (region covers may miss newborns)", err)
			}
		}
		m.covers.Bump()
	}
	m.cfg.Logf("admitted %d born objects (universe now %d)", len(fresh), universe)
	if err != nil {
		return len(fresh), fmt.Errorf("cache: commit birth decision: %w", err)
	}
	if err := m.executePlan(ctx, p); err != nil {
		return len(fresh), fmt.Errorf("cache: execute birth decision: %w", err)
	}
	return len(fresh), nil
}

// commitDecisionLocked applies a decision's residency bookkeeping
// (evictions take effect, loads are committed so later decisions see
// them) and returns the repository I/O still owed. mu must be held.
// Residency is deliberately optimistic: the policy's view is the
// source of truth the moment it decides, and the network load is its
// materialization (local answers join in-flight loads via loadGroup).
// If a load ultimately fails, executePlan rolls the residency entry
// back; the policy's internal state keeps believing the load happened
// — the same divergence the seed had on a failed load.
func (m *Middleware) commitDecisionLocked(d core.Decision) (plan, error) {
	// Validate before mutating: once a load flight is registered it
	// must be run, so nothing may fail after registration starts.
	evicting := make(map[model.ObjectID]struct{}, len(d.Evict))
	for _, id := range d.Evict {
		if _, ok := m.resident[id]; !ok {
			return plan{}, fmt.Errorf("evict of non-resident object %d", id)
		}
		evicting[id] = struct{}{}
	}
	for _, id := range d.Load {
		if _, dup := m.resident[id]; dup {
			if _, ok := evicting[id]; !ok {
				return plan{}, fmt.Errorf("object %d already resident", id)
			}
		}
	}
	var p plan
	p.evicts = d.Evict
	for _, id := range d.Evict {
		delete(m.resident, id)
	}
	for _, id := range d.Load {
		m.resident[id] = struct{}{}
		c, leader := m.loads.register(id)
		if !leader {
			m.dedupLoads.Add(1)
		}
		p.loads = append(p.loads, pendingLoad{id: id, charge: true, call: c, leader: leader})
	}
	p.shipUpdates = d.ApplyUpdates
	return p, nil
}

// executePlan performs the network I/O a committed decision owes:
// object loads (singleflighted per object) and update shipments.
func (m *Middleware) executePlan(ctx context.Context, p plan) error {
	m.journalPlan(p)
	// Start every owned flight before waiting on any, so sibling
	// loads of one decision overlap.
	for _, l := range p.loads {
		if l.leader {
			m.loads.start(ctx, l.id, l.call, m.loadFlight(l.id, l.charge))
		}
	}
	for _, l := range p.loads {
		if err := l.call.await(ctx); err != nil {
			return err
		}
	}
	if len(p.shipUpdates) > 0 {
		reply, err := m.repo.RoundTrip(ctx, netproto.Frame{
			Type: netproto.MsgShipUpdates,
			Body: netproto.ShipUpdatesMsg{IDs: p.shipUpdates},
		})
		if err != nil {
			return fmt.Errorf("ship updates: %w", err)
		}
		ups, ok := reply.Body.(netproto.UpdatesMsg)
		if !ok {
			return fmt.Errorf("repository replied %s to update shipment", reply.Type)
		}
		var total cost.Bytes
		for _, u := range ups.Updates {
			total += u.Cost
		}
		m.ledger.Charge(cost.UpdateShip, total)
	}
	return nil
}

// fetchObject loads one object from the repository, collapsing
// concurrent loads of the same object into a single round trip (the
// preload path; decision loads register their flights at commit time).
func (m *Middleware) fetchObject(ctx context.Context, id model.ObjectID, charge bool) error {
	c, leader := m.loads.register(id)
	if leader {
		m.loads.start(ctx, id, c, m.loadFlight(id, charge))
	} else {
		m.dedupLoads.Add(1)
	}
	return c.await(ctx)
}

// loadFlight is the body of one object-load flight. On failure it
// rolls the optimistic residency commit back itself — the flight is
// the only place that knows the load definitively failed (waiters may
// have bailed on their own contexts while it was still going).
func (m *Middleware) loadFlight(id model.ObjectID, charge bool) func(context.Context) error {
	return func(ctx context.Context) error {
		start := time.Now()
		defer func() { m.loadLat.Observe(time.Since(start)) }()
		err := func() error {
			reply, err := m.repo.RoundTrip(ctx, netproto.Frame{
				Type: netproto.MsgLoadObject,
				Body: netproto.LoadObjectMsg{Object: id},
			})
			if err != nil {
				return fmt.Errorf("load object %d: %w", id, err)
			}
			data, ok := reply.Body.(netproto.ObjectDataMsg)
			if !ok {
				return fmt.Errorf("repository replied %s to load", reply.Type)
			}
			if charge {
				m.ledger.Charge(cost.ObjectLoad, data.Object.Size)
			}
			return nil
		}()
		if err != nil {
			m.mu.Lock()
			delete(m.resident, id)
			m.mu.Unlock()
		}
		return err
	}
}

// sampleRowsFor returns demo rows for locally answered queries.
func (m *Middleware) sampleRowsFor(objs []model.ObjectID) []netproto.ResultRow {
	if len(m.cfg.SampleRows) == 0 {
		return nil
	}
	want := make(map[model.ObjectID]struct{}, len(objs))
	for _, id := range objs {
		want[id] = struct{}{}
	}
	var rows []netproto.ResultRow
	for _, row := range m.cfg.SampleRows {
		if _, ok := want[row.Object]; !ok {
			continue
		}
		rows = append(rows, netproto.ResultRow{
			ObjID: row.ObjID, RA: row.RA, Dec: row.Dec, R: row.R,
		})
		if len(rows) >= 8 {
			break
		}
	}
	return rows
}

// loadGroup is a minimal singleflight keyed by object ID. The flight
// itself runs detached from any one caller's context (the load
// benefits every query that joins it, so the initiator's deadline
// must not abort it for the others); each waiter honors its own
// context instead.
type loadGroup struct {
	mu       sync.Mutex
	inflight map[model.ObjectID]*loadCall
}

type loadCall struct {
	done chan struct{}
	err  error
}

// register returns id's flight, creating it if absent; leader reports
// whether the caller owns it and must call start.
func (g *loadGroup) register(id model.ObjectID) (c *loadCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight == nil {
		g.inflight = make(map[model.ObjectID]*loadCall)
	}
	if c, ok := g.inflight[id]; ok {
		return c, false
	}
	c = &loadCall{done: make(chan struct{})}
	g.inflight[id] = c
	return c, true
}

// start runs an owned flight detached from the initiator's context.
func (g *loadGroup) start(ctx context.Context, id model.ObjectID, c *loadCall, fn func(context.Context) error) {
	go func() {
		c.err = fn(context.WithoutCancel(ctx))
		g.mu.Lock()
		delete(g.inflight, id)
		g.mu.Unlock()
		close(c.done)
	}()
}

// await blocks until the flight settles or the waiter's own context
// expires (the flight keeps going for the other waiters).
func (c *loadCall) await(ctx context.Context) error {
	select {
	case <-c.done:
		return c.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wait joins any in-flight load of id without starting one, so a
// locally answered query can't race ahead of the load it depends on.
// The flight's own error handling (residency rollback) is the
// leader's job; waiters just need it settled.
func (g *loadGroup) wait(ctx context.Context, id model.ObjectID) {
	g.mu.Lock()
	c, ok := g.inflight[id]
	g.mu.Unlock()
	if !ok {
		return
	}
	select {
	case <-c.done:
	case <-ctx.Done():
	}
}
