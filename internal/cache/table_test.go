package cache

import (
	"slices"
	"testing"
	"testing/quick"

	"github.com/deltacache/delta/internal/model"
)

func TestObjectTableDenseSparse(t *testing.T) {
	tab := newObjectTable(4)
	if tab.len() != 0 {
		t.Fatalf("fresh table len = %d", tab.len())
	}
	if _, ok := tab.get(1); ok {
		t.Fatal("empty table claims object 1")
	}

	// Sequential IDs land in the dense slice.
	for id := model.ObjectID(1); id <= 8; id++ {
		tab.put(model.Object{ID: id, Size: 10})
	}
	if tab.len() != 8 {
		t.Fatalf("len = %d, want 8", tab.len())
	}
	if len(tab.sparse) != 0 {
		t.Fatalf("sequential IDs spilled to sparse: %d entries", len(tab.sparse))
	}

	// A put is an upsert, not a duplicate.
	tab.put(model.Object{ID: 3, Size: 99})
	if tab.len() != 8 {
		t.Fatalf("upsert changed len to %d", tab.len())
	}
	if o, ok := tab.get(3); !ok || o.Size != 99 {
		t.Fatalf("get(3) = %+v, %v after upsert", o, ok)
	}

	// An ID within denseSlack of the range end grows the dense slice;
	// one far beyond it overflows into the sparse map.
	tab.put(model.Object{ID: model.ObjectID(8 + denseSlack)})
	if len(tab.sparse) != 0 {
		t.Fatalf("slack-range ID went sparse (dense len %d)", len(tab.dense))
	}
	far := model.ObjectID(len(tab.dense) + denseSlack + 7)
	tab.put(model.Object{ID: far, Size: 5})
	if _, inSparse := tab.sparse[far]; !inSparse {
		t.Fatalf("far ID %d not in sparse overflow", far)
	}
	if o, ok := tab.get(far); !ok || o.Size != 5 {
		t.Fatalf("get(far) = %+v, %v", o, ok)
	}

	// Growing the dense range absorbs the sparse entry and preserves
	// membership.
	before := tab.len()
	tab.grow(int(far) + 10)
	if len(tab.sparse) != 0 {
		t.Fatalf("grow left %d sparse entries", len(tab.sparse))
	}
	if tab.len() != before {
		t.Fatalf("grow changed len %d -> %d", before, tab.len())
	}
	if o, ok := tab.get(far); !ok || o.Size != 5 {
		t.Fatalf("get(far) after grow = %+v, %v", o, ok)
	}

	// Unset slots inside the dense range stay absent.
	if tab.has(9) {
		t.Fatal("hole in the dense range reported present")
	}

	// Iteration yields each member exactly once, dense range ascending.
	var ids []model.ObjectID
	for o := range tab.all() {
		ids = append(ids, o.ID)
	}
	if len(ids) != tab.len() {
		t.Fatalf("all() yielded %d of %d members", len(ids), tab.len())
	}
	if !slices.IsSorted(ids) {
		t.Fatal("all-dense iteration not in ascending ID order")
	}
}

func TestIDSetDenseSparse(t *testing.T) {
	s := newIDSet(64)
	for _, id := range []model.ObjectID{1, 64, 65, 2, 64} {
		s.add(id)
	}
	if s.len() != 4 {
		t.Fatalf("len = %d, want 4 (re-add must not double-count)", s.len())
	}
	for _, id := range []model.ObjectID{1, 2, 64, 65} {
		if !s.has(id) {
			t.Fatalf("missing member %d", id)
		}
	}
	if s.has(3) || s.has(66) {
		t.Fatal("phantom member")
	}

	// A far-out ID overflows to sparse, and grow absorbs it.
	far := model.ObjectID(len(s.bits)*64 + denseSlack*64 + 100)
	s.add(far)
	if _, inSparse := s.sparse[far]; !inSparse {
		t.Fatalf("far ID %d not in sparse overflow", far)
	}
	s.grow(int(far)/64 + 1)
	if len(s.sparse) != 0 {
		t.Fatal("grow left sparse entries behind")
	}
	if !s.has(far) || s.len() != 5 {
		t.Fatalf("membership broken after grow: has=%v len=%d", s.has(far), s.len())
	}

	var got []model.ObjectID
	for id := range s.all() {
		got = append(got, id)
	}
	slices.Sort(got)
	want := []model.ObjectID{1, 2, 64, 65, far}
	if !slices.Equal(got, want) {
		t.Fatalf("all() = %v, want %v", got, want)
	}
}

// TestIDSetMatchesMap drives idSet against the reference map
// implementation with arbitrary ID streams: membership, cardinality,
// and iteration must agree regardless of how adds split across the
// dense bitset and the sparse overflow.
func TestIDSetMatchesMap(t *testing.T) {
	check := func(raw []uint32) bool {
		s := newIDSet(8)
		ref := make(map[model.ObjectID]struct{})
		for _, r := range raw {
			id := model.ObjectID(r%100000 + 1)
			s.add(id)
			ref[id] = struct{}{}
		}
		if s.len() != len(ref) {
			return false
		}
		for id := range ref {
			if !s.has(id) {
				return false
			}
		}
		seen := 0
		for id := range s.all() {
			if _, ok := ref[id]; !ok {
				return false
			}
			seen++
		}
		return seen == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
