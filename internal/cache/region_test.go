package cache_test

import (
	"context"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"

	"github.com/deltacache/delta/internal/model"
)

// TestCacheResolvesRegionQueries covers the standalone-cache sky-region
// path: the middleware resolves a client's cap to B(q) through its
// memoized cover cache and serves the query normally; hit/miss
// counters surface in StatsMsg.
func TestCacheResolvesRegionQueries(t *testing.T) {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	mw, err := cache.New(cache.Config{
		RepoAddr: repo.Addr(),
		Policy:   core.NewNoCache(),
		Objects:  survey.Objects(),
		Capacity: 8 * cost.GB,
		Scale:    netproto.PayloadScale{},
		Resolver: survey.CoverCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.Start(); err != nil {
		t.Fatal(err)
	}
	defer mw.Close()

	cl, err := client.Dial(mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const ra, dec, radius = 90.0, 10.0, 8.0
	want := survey.CoverCap(geom.CapFromRADec(ra, dec, radius))
	if len(want) == 0 {
		t.Fatal("test region covers no objects")
	}
	const repeats = 4
	for i := 0; i < repeats; i++ {
		res, err := cl.QueryRegion(ctx, ra, dec, radius, model.Query{
			Cost:      cost.MB,
			Tolerance: model.AnyStaleness,
			Time:      time.Duration(i+1) * time.Second,
		})
		if err != nil {
			t.Fatalf("region query %d: %v", i, err)
		}
		if res.Logical != int64(cost.MB) {
			t.Fatalf("region query %d logical = %d, want %d", i, res.Logical, cost.MB)
		}
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoverCacheMisses < 1 || stats.CoverCacheHits < repeats-1 {
		t.Errorf("cover cache = %d hits / %d misses, want ≥%d / ≥1",
			stats.CoverCacheHits, stats.CoverCacheMisses, repeats-1)
	}

	// A client mixing an object list with a region is a usage error.
	if _, err := cl.QueryRegion(ctx, ra, dec, radius, model.Query{
		Objects: []model.ObjectID{1}, Cost: cost.MB,
	}); err == nil {
		t.Error("region query with an explicit object list was accepted")
	}
}
