package cache_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// ctx is the background context shared by the integration tests;
// cancellation paths are covered in the client package.
var ctx = context.Background()

// deployment spins up a repository + middleware pair on loopback.
type deployment struct {
	survey *catalog.Survey
	repo   *server.Repository
	mw     *cache.Middleware
}

func startDeployment(t *testing.T, policy core.Policy) *deployment {
	t.Helper()
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	scfg.TotalSize = 16 * cost.GB
	scfg.MinObjectSize = 100 * cost.MB
	scfg.MaxObjectSize = 4 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.DefaultScale()})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })

	mw, err := cache.New(cache.Config{
		RepoAddr: repo.Addr(),
		Policy:   policy,
		Objects:  survey.Objects(),
		Capacity: 8 * cost.GB,
		Scale:    netproto.DefaultScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mw.Close() })
	return &deployment{survey: survey, repo: repo, mw: mw}
}

func TestEndToEndQueryThroughCache(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	obj := d.survey.Objects()[0]
	res, err := cl.Query(ctx, model.Query{
		Objects:   []model.ObjectID{obj.ID},
		Cost:      10 * cost.MB,
		Tolerance: model.NoTolerance,
		Time:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "repository" {
		t.Errorf("cold cache should ship to repository, got %q", res.Source)
	}
	if res.Logical != int64(10*cost.MB) {
		t.Errorf("logical size = %d", res.Logical)
	}
	// The ledger must have charged exactly one query shipment.
	snap := d.mw.Ledger()
	if snap.QueryShip != 10*cost.MB {
		t.Errorf("ledger query ship = %v, want 10MB", snap.QueryShip)
	}
}

func TestEndToEndLoadThenHit(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	obj := d.survey.Objects()[0]
	// A query whose cost covers the object's load cost forces a
	// deterministic load (VCover's LoadManager).
	if _, err := cl.Query(ctx, model.Query{
		Objects:   []model.ObjectID{obj.ID},
		Cost:      obj.Size,
		Tolerance: model.NoTolerance,
		Time:      time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	snap := d.mw.Ledger()
	if snap.ObjectLoad != obj.Size {
		t.Fatalf("expected the object to load (ledger %v, want %v)", snap.ObjectLoad, obj.Size)
	}
	// Second query on the same object answers at the cache for free.
	res, err := cl.Query(ctx, model.Query{
		Objects:   []model.ObjectID{obj.ID},
		Cost:      5 * cost.MB,
		Tolerance: model.NoTolerance,
		Time:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Errorf("warm query should hit the cache, got %q", res.Source)
	}
	if got := d.mw.Ledger().QueryShip; got != obj.Size {
		t.Errorf("no extra query shipping expected, ledger shows %v", got)
	}
}

func TestEndToEndInvalidationAndUpdateShipping(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	obj := d.survey.Objects()[0]
	// Warm the object into the cache.
	if _, err := cl.Query(ctx, model.Query{
		Objects: []model.ObjectID{obj.ID}, Cost: obj.Size,
		Tolerance: model.NoTolerance, Time: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	// Pipeline delivers an update; the invalidation must reach the
	// cache's policy before a currency-demanding query arrives.
	d.repo.ApplyUpdate(model.Update{ID: 1, Object: obj.ID, Cost: cost.MB, Time: 2 * time.Second})
	waitFor(t, func() bool {
		// The cheap update should be shipped in response to an
		// expensive fresh query; poll until the invalidation landed.
		res, err := cl.Query(ctx, model.Query{
			Objects: []model.ObjectID{obj.ID}, Cost: 100 * cost.MB,
			Tolerance: model.NoTolerance, Time: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Source == "cache" && d.mw.Ledger().UpdateShip >= cost.MB
	})
}

func TestEndToEndReplicaPolicy(t *testing.T) {
	d := startDeployment(t, core.NewReplica())
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Replica preloads everything (uncharged) and answers locally.
	res, err := cl.Query(ctx, model.Query{
		Objects:   []model.ObjectID{1, 2, 3},
		Cost:      50 * cost.MB,
		Tolerance: model.NoTolerance,
		Time:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Errorf("replica must answer at cache, got %q", res.Source)
	}
	if d.mw.Ledger().Total() != 0 {
		t.Errorf("replica preload must be free, ledger %v", d.mw.Ledger().Total())
	}
	// Every pipeline update is pushed to the replica.
	d.repo.ApplyUpdate(model.Update{ID: 1, Object: 1, Cost: 3 * cost.MB, Time: 2 * time.Second})
	waitFor(t, func() bool { return d.mw.Ledger().UpdateShip == 3*cost.MB })
}

func TestStatsEndpoint(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(ctx, model.Query{
		Objects: []model.ObjectID{1}, Cost: cost.MB,
		Tolerance: model.NoTolerance, Time: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Policy != "VCover" || stats.Queries != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestConcurrentClients(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			cl, err := client.Dial(d.mw.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 20; j++ {
				_, err := cl.Query(ctx, model.Query{
					Objects:   []model.ObjectID{model.ObjectID(j%16 + 1)},
					Cost:      cost.MB,
					Tolerance: model.AnyStaleness,
					Time:      time.Duration(i*100+j) * time.Second,
				})
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", i, j, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	stats := d.mw.Stats()
	if stats.Queries != n*20 {
		t.Errorf("queries = %d, want %d", stats.Queries, n*20)
	}
}

func TestServerRejectsUnknownRole(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	nc, err := net.Dial("tcp", d.repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "intruder"}}); err != nil {
		t.Fatal(err)
	}
	// The server closes the connection; the next receive fails.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Recv(); err == nil {
		t.Error("expected connection close for unknown role")
	}
}

func TestPipelineOverNetwork(t *testing.T) {
	d := startDeployment(t, core.NewReplica())
	nc, err := net.Dial("tcp", d.repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "pipeline"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(netproto.Frame{Type: netproto.MsgUpdateFeed, Body: netproto.UpdateFeedMsg{
		Update: model.Update{ID: 42, Object: 2, Cost: 7 * cost.MB, Time: time.Second},
	}}); err != nil {
		t.Fatal(err)
	}
	// The update reaches the repository and is pushed to the replica.
	waitFor(t, func() bool { return d.mw.Ledger().UpdateShip == 7*cost.MB })
}

// TestConcurrentMixedStress hammers one cache with 32 goroutines
// issuing a mix of queries and stats requests through shared and
// private clients; every reply must be well-formed and the query
// counter exact. Run with -race to exercise the lock-split paths.
func TestConcurrentMixedStress(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	shared, err := client.Dial(d.mw.Addr(), client.WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()

	const goroutines = 32
	const perG = 15
	var (
		wg          sync.WaitGroup
		wantQueries int64
	)
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		cl := shared
		if i%2 == 0 { // half the goroutines get a private connection
			own, err := client.Dial(d.mw.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer own.Close()
			cl = own
		}
		wantQueries += perG
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				if j%5 == 4 { // sprinkle stats requests between queries
					if _, err := cl.Stats(ctx); err != nil {
						errs <- fmt.Errorf("goroutine %d stats %d: %w", i, j, err)
						return
					}
				}
				res, err := cl.Query(ctx, model.Query{
					Objects:   []model.ObjectID{model.ObjectID((i+j)%16 + 1)},
					Cost:      cost.MB,
					Tolerance: model.AnyStaleness,
					Time:      time.Duration(i*1000+j) * time.Second,
				})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %w", i, j, err)
					return
				}
				if res.Source != "cache" && res.Source != "repository" {
					errs <- fmt.Errorf("goroutine %d query %d: bad source %q", i, j, res.Source)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := d.mw.Stats()
	if stats.Queries != wantQueries {
		t.Errorf("queries = %d, want %d", stats.Queries, wantQueries)
	}
	if stats.AtCache+stats.Shipped != stats.Queries {
		t.Errorf("atCache(%d) + shipped(%d) != queries(%d)",
			stats.AtCache, stats.Shipped, stats.Queries)
	}
}

// TestQueryBatchThroughCache runs the batch API against a real
// deployment.
func TestQueryBatchThroughCache(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	qs := make([]model.Query, 10)
	for i := range qs {
		qs[i] = model.Query{
			Objects:   []model.ObjectID{model.ObjectID(i%16 + 1)},
			Cost:      cost.MB,
			Tolerance: model.AnyStaleness,
			Time:      time.Duration(i) * time.Second,
		}
	}
	results, err := cl.QueryBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || res.Logical != int64(cost.MB) {
			t.Fatalf("batch result %d = %+v", i, res)
		}
	}
}

// TestAddrBeforeStart ensures Addr is safe (empty, not a panic) before
// Start on both nodes.
func TestAddrBeforeStart(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	mw, err := cache.New(cache.Config{
		RepoAddr: d.repo.Addr(),
		Policy:   core.NewVCover(core.DefaultVCoverConfig()),
		Objects:  d.survey.Objects(),
		Capacity: 8 * cost.GB,
		Scale:    netproto.DefaultScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	if got := mw.Addr(); got != "" {
		t.Errorf("Addr before Start = %q, want empty", got)
	}
}

// waitFor polls a condition with a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

// TestSingleCacheAdoptsBirths covers live growth on the unsharded
// deployment: a birth published through the cache is queryable the
// moment the publish acks, and a birth published straight to the
// repository reaches the cache through the invalidation stream.
func TestSingleCacheAdoptsBirths(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	next := d.survey.NextID()
	publishViaCache := model.Birth{
		Object: model.Object{ID: next, Size: 200 * cost.MB},
		RA:     33, Dec: 12, Time: time.Second,
	}
	accepted, err := cl.AddObjects(ctx, []model.Birth{publishViaCache})
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 1 {
		t.Fatalf("accepted = %d, want 1", accepted)
	}
	// Immediately queryable: the publish path adopts before replying.
	res, err := cl.Query(ctx, model.Query{
		Objects: []model.ObjectID{next}, Cost: cost.MB,
		Tolerance: model.AnyStaleness, Time: time.Minute,
	})
	if err != nil {
		t.Fatalf("born object not queryable after publish ack: %v", err)
	}
	if res.Source != "repository" {
		t.Errorf("cold newborn should ship, got %q", res.Source)
	}
	// Republishing is idempotent end to end.
	if accepted, err := cl.AddObjects(ctx, []model.Birth{publishViaCache}); err != nil || accepted != 0 {
		t.Fatalf("republish accepted %d, err %v", accepted, err)
	}

	// A birth ingested directly at the repository reaches the cache
	// via the announcement stream within one round trip.
	direct := model.Birth{
		Object: model.Object{ID: next + 1, Size: 120 * cost.MB},
		RA:     210, Dec: -5, Time: 2 * time.Second,
	}
	if _, err := d.repo.AddObjects([]model.Birth{direct}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Query(ctx, model.Query{
			Objects: []model.ObjectID{next + 1}, Cost: cost.MB,
			Tolerance: model.AnyStaleness, Time: time.Minute,
		}); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("announced birth never became queryable: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjectsBorn != 2 {
		t.Errorf("cache ObjectsBorn = %d, want 2", st.ObjectsBorn)
	}
}

// TestReplicaLoadsBirths pins the Grower contract for the push-based
// mirror: a Replica cache loads every newborn so queries over it stay
// local.
func TestReplicaLoadsBirths(t *testing.T) {
	d := startDeployment(t, core.NewReplica())
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	next := d.survey.NextID()
	if _, err := cl.AddObjects(ctx, []model.Birth{{
		Object: model.Object{ID: next, Size: 300 * cost.MB},
		RA:     75, Dec: 42, Time: time.Second,
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(ctx, model.Query{
		Objects: []model.ObjectID{next}, Cost: cost.MB,
		Tolerance: model.NoTolerance, Time: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Errorf("replica should answer the newborn locally, got %q", res.Source)
	}
}
