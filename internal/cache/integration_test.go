package cache_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
)

// deployment spins up a repository + middleware pair on loopback.
type deployment struct {
	survey *catalog.Survey
	repo   *server.Repository
	mw     *cache.Middleware
}

func startDeployment(t *testing.T, policy core.Policy) *deployment {
	t.Helper()
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 16
	scfg.TotalSize = 16 * cost.GB
	scfg.MinObjectSize = 100 * cost.MB
	scfg.MaxObjectSize = 4 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.DefaultScale()})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })

	mw, err := cache.New(cache.Config{
		RepoAddr: repo.Addr(),
		Policy:   policy,
		Objects:  survey.Objects(),
		Capacity: 8 * cost.GB,
		Scale:    netproto.DefaultScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mw.Close() })
	return &deployment{survey: survey, repo: repo, mw: mw}
}

func TestEndToEndQueryThroughCache(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	obj := d.survey.Objects()[0]
	res, err := cl.Query(model.Query{
		Objects:   []model.ObjectID{obj.ID},
		Cost:      10 * cost.MB,
		Tolerance: model.NoTolerance,
		Time:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "repository" {
		t.Errorf("cold cache should ship to repository, got %q", res.Source)
	}
	if res.Logical != int64(10*cost.MB) {
		t.Errorf("logical size = %d", res.Logical)
	}
	// The ledger must have charged exactly one query shipment.
	snap := d.mw.Ledger()
	if snap.QueryShip != 10*cost.MB {
		t.Errorf("ledger query ship = %v, want 10MB", snap.QueryShip)
	}
}

func TestEndToEndLoadThenHit(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	obj := d.survey.Objects()[0]
	// A query whose cost covers the object's load cost forces a
	// deterministic load (VCover's LoadManager).
	if _, err := cl.Query(model.Query{
		Objects:   []model.ObjectID{obj.ID},
		Cost:      obj.Size,
		Tolerance: model.NoTolerance,
		Time:      time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	snap := d.mw.Ledger()
	if snap.ObjectLoad != obj.Size {
		t.Fatalf("expected the object to load (ledger %v, want %v)", snap.ObjectLoad, obj.Size)
	}
	// Second query on the same object answers at the cache for free.
	res, err := cl.Query(model.Query{
		Objects:   []model.ObjectID{obj.ID},
		Cost:      5 * cost.MB,
		Tolerance: model.NoTolerance,
		Time:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Errorf("warm query should hit the cache, got %q", res.Source)
	}
	if got := d.mw.Ledger().QueryShip; got != obj.Size {
		t.Errorf("no extra query shipping expected, ledger shows %v", got)
	}
}

func TestEndToEndInvalidationAndUpdateShipping(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	obj := d.survey.Objects()[0]
	// Warm the object into the cache.
	if _, err := cl.Query(model.Query{
		Objects: []model.ObjectID{obj.ID}, Cost: obj.Size,
		Tolerance: model.NoTolerance, Time: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	// Pipeline delivers an update; the invalidation must reach the
	// cache's policy before a currency-demanding query arrives.
	d.repo.ApplyUpdate(model.Update{ID: 1, Object: obj.ID, Cost: cost.MB, Time: 2 * time.Second})
	waitFor(t, func() bool {
		// The cheap update should be shipped in response to an
		// expensive fresh query; poll until the invalidation landed.
		res, err := cl.Query(model.Query{
			Objects: []model.ObjectID{obj.ID}, Cost: 100 * cost.MB,
			Tolerance: model.NoTolerance, Time: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Source == "cache" && d.mw.Ledger().UpdateShip >= cost.MB
	})
}

func TestEndToEndReplicaPolicy(t *testing.T) {
	d := startDeployment(t, core.NewReplica())
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Replica preloads everything (uncharged) and answers locally.
	res, err := cl.Query(model.Query{
		Objects:   []model.ObjectID{1, 2, 3},
		Cost:      50 * cost.MB,
		Tolerance: model.NoTolerance,
		Time:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" {
		t.Errorf("replica must answer at cache, got %q", res.Source)
	}
	if d.mw.Ledger().Total() != 0 {
		t.Errorf("replica preload must be free, ledger %v", d.mw.Ledger().Total())
	}
	// Every pipeline update is pushed to the replica.
	d.repo.ApplyUpdate(model.Update{ID: 1, Object: 1, Cost: 3 * cost.MB, Time: 2 * time.Second})
	waitFor(t, func() bool { return d.mw.Ledger().UpdateShip == 3*cost.MB })
}

func TestStatsEndpoint(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	cl, err := client.Dial(d.mw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(model.Query{
		Objects: []model.ObjectID{1}, Cost: cost.MB,
		Tolerance: model.NoTolerance, Time: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Policy != "VCover" || stats.Queries != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestConcurrentClients(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			cl, err := client.Dial(d.mw.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 20; j++ {
				_, err := cl.Query(model.Query{
					Objects:   []model.ObjectID{model.ObjectID(j%16 + 1)},
					Cost:      cost.MB,
					Tolerance: model.AnyStaleness,
					Time:      time.Duration(i*100+j) * time.Second,
				})
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", i, j, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	stats := d.mw.Stats()
	if stats.Queries != n*20 {
		t.Errorf("queries = %d, want %d", stats.Queries, n*20)
	}
}

func TestServerRejectsUnknownRole(t *testing.T) {
	d := startDeployment(t, core.NewVCover(core.DefaultVCoverConfig()))
	nc, err := net.Dial("tcp", d.repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "intruder"}}); err != nil {
		t.Fatal(err)
	}
	// The server closes the connection; the next receive fails.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Recv(); err == nil {
		t.Error("expected connection close for unknown role")
	}
}

func TestPipelineOverNetwork(t *testing.T) {
	d := startDeployment(t, core.NewReplica())
	nc, err := net.Dial("tcp", d.repo.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := netproto.NewConn(nc)
	if err := c.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "pipeline"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(netproto.Frame{Type: netproto.MsgUpdateFeed, Body: netproto.UpdateFeedMsg{
		Update: model.Update{ID: 42, Object: 2, Cost: 7 * cost.MB, Time: time.Second},
	}}); err != nil {
		t.Fatal(err)
	}
	// The update reaches the repository and is pushed to the replica.
	waitFor(t, func() bool { return d.mw.Ledger().UpdateShip == 7*cost.MB })
}

// waitFor polls a condition with a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
