// Package client provides the astronomer-facing library for querying a
// Delta deployment: it connects to the middleware cache, submits
// queries with currency requirements, and returns results along with
// where they were answered (cache or repository).
package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// Client is a connection to the middleware cache. It is safe for
// sequential use; wrap with your own pool for concurrency.
type Client struct {
	conn   net.Conn
	proto  *netproto.Conn
	nextID model.QueryID
}

// Dial connects to the cache's client endpoint.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, proto: netproto.NewConn(conn)}
	if err := c.proto.Send(netproto.Frame{Type: netproto.MsgHello, Body: netproto.Hello{Role: "client"}}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	return c, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Result is a query answer.
type Result struct {
	// Source reports who answered: "cache" or "repository".
	Source string
	// Logical is the result's logical size (the traffic the answer cost
	// if it was shipped).
	Logical int64
	// Rows is a sample of result rows.
	Rows []netproto.ResultRow
	// Elapsed is the server-side handling time.
	Elapsed time.Duration
}

// Query submits a query and waits for its result.
func (c *Client) Query(q model.Query) (*Result, error) {
	if q.ID == 0 {
		c.nextID++
		q.ID = c.nextID
	}
	if err := c.proto.Send(netproto.Frame{Type: netproto.MsgQuery, Body: netproto.QueryMsg{Query: q}}); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	reply, err := c.proto.Recv()
	if err != nil {
		return nil, fmt.Errorf("client: recv: %w", err)
	}
	switch body := reply.Body.(type) {
	case netproto.QueryResultMsg:
		return &Result{
			Source:  body.Source,
			Logical: int64(body.Logical),
			Rows:    body.Rows,
			Elapsed: body.Elapsed,
		}, nil
	case netproto.ErrorMsg:
		return nil, errors.New(body.Message)
	default:
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
}

// Stats fetches the middleware's statistics.
func (c *Client) Stats() (*netproto.StatsMsg, error) {
	if err := c.proto.Send(netproto.Frame{Type: netproto.MsgStats, Body: netproto.StatsMsg{}}); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	reply, err := c.proto.Recv()
	if err != nil {
		return nil, fmt.Errorf("client: recv: %w", err)
	}
	stats, ok := reply.Body.(netproto.StatsMsg)
	if !ok {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return &stats, nil
}
