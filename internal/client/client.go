// Package client provides the astronomer-facing library for querying a
// Delta deployment: it connects to the middleware cache, submits
// queries with currency requirements, and returns results along with
// where they were answered (cache or repository).
//
// The client is safe for concurrent use by any number of goroutines.
// It speaks protocol v2: requests are multiplexed over a small
// connection pool and correlated by RequestID, so many queries can be
// in flight at once. Every call takes a context for cancellation and
// deadlines; QueryAsync and QueryBatch issue queries concurrently
// without the caller managing goroutines. Dial options configure the
// pool size and timeouts, and WithLockstep falls back to the v1
// one-request-at-a-time protocol for pre-v2 servers.
package client

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

// Option configures Dial.
type Option func(*options)

type options struct {
	poolSize       int
	dialTimeout    time.Duration
	requestTimeout time.Duration
	dialRetry      time.Duration
	lockstep       bool
	wireVersion    int
	trace          bool
	observer       func(time.Duration)
}

// WithPoolSize sets how many connections back the session (default 1;
// each connection multiplexes, so small values go far).
func WithPoolSize(n int) Option { return func(o *options) { o.poolSize = n } }

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) Option { return func(o *options) { o.dialTimeout = d } }

// WithDialRetry keeps retrying a refused connection for up to d with
// capped exponential backoff and jitter, riding out the startup race
// of a dialer launched alongside its server (a router bringing up its
// shards, a script starting client and cache together). The default
// is 2s; a negative d disables retrying so a refused dial fails
// immediately.
func WithDialRetry(d time.Duration) Option { return func(o *options) { o.dialRetry = d } }

// WithRequestTimeout applies a default per-request deadline when the
// caller's context has none (default: no deadline).
func WithRequestTimeout(d time.Duration) Option { return func(o *options) { o.requestTimeout = d } }

// WithLockstep speaks protocol v1 (one request in flight per
// connection) for servers that predate the v2 handshake.
func WithLockstep() Option { return func(o *options) { o.lockstep = true } }

// WithWireVersion caps the protocol version announced in the
// handshake: 0 (the default) negotiates the newest — v3, the binary
// codec — while 2 forces the gob v2 codec for peers pinned there.
func WithWireVersion(v int) Option { return func(o *options) { o.wireVersion = v } }

// WithTrace stamps every query with a fresh trace ID, so each hop
// (router, shard cache, repository) records its span and the Result
// carries the assembled fan-out tree. Peers that predate tracing
// simply ignore the ID and return no spans.
func WithTrace() Option { return func(o *options) { o.trace = true } }

// WithQueryObserver calls fn with the client-observed wall-clock
// latency of every successful query — the end-to-end figure including
// the network, where Result.Elapsed is only the server-side handling
// time. fn must be safe for concurrent use.
func WithQueryObserver(fn func(time.Duration)) Option {
	return func(o *options) { o.observer = fn }
}

// Client is a connection to the middleware cache, safe for concurrent
// use.
type Client struct {
	sess           *netproto.Session
	requestTimeout time.Duration
	nextID         atomic.Int64
	trace          bool
	traceSeed      uint64
	traceCtr       atomic.Uint64
	observer       func(time.Duration)
}

// Dial connects to the cache's client endpoint. Refused connections
// are retried with capped exponential backoff plus jitter (see
// WithDialRetry), so dialing a node that is still binding its listener
// succeeds instead of failing the race.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{dialRetry: 2 * time.Second}
	for _, opt := range opts {
		opt(&o)
	}
	sess, err := netproto.DialSession(addr, "client", netproto.SessionConfig{
		PoolSize:    o.poolSize,
		DialTimeout: o.dialTimeout,
		DialRetry:   max(o.dialRetry, 0),
		Lockstep:    o.lockstep,
		WireVersion: o.wireVersion,
	})
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Client{
		sess:           sess,
		requestTimeout: o.requestTimeout,
		trace:          o.trace,
		// Seeded from the wall clock so concurrent clients against the
		// same deployment almost never collide in a node's trace ring.
		traceSeed: uint64(time.Now().UnixNano()),
		observer:  o.observer,
	}, nil
}

// WireVersion reports the protocol version the connection negotiated
// (3 = binary codec, 2 = gob multiplexing, 1 = lockstep).
func (c *Client) WireVersion() int { return c.sess.WireVersion() }

// DialCluster connects to a cluster router's client endpoint. The
// router speaks exactly the single-cache protocol, so this is Dial
// with the intent spelled out; ClusterStats additionally exposes the
// per-shard statistics breakdown (which a single cache also answers,
// as a one-shard cluster).
func DialCluster(addr string, opts ...Option) (*Client, error) {
	return Dial(addr, opts...)
}

// Close terminates the connection; in-flight calls fail.
func (c *Client) Close() error { return c.sess.Close() }

// Result is a query answer.
type Result struct {
	// Source reports who answered: "cache" or "repository".
	Source string
	// Logical is the result's logical size (the traffic the answer cost
	// if it was shipped).
	Logical int64
	// Rows is a sample of result rows.
	Rows []netproto.ResultRow
	// Elapsed is the server-side handling time.
	Elapsed time.Duration
	// Degraded reports a partial answer: one or more cluster shards
	// failed, so the result covers only the surviving shards' objects.
	// MissingShards lists the failed shard indices. Always false when
	// talking to a single cache.
	Degraded      bool
	MissingShards []int
	// TraceID and Spans carry the query's fan-out trace when the client
	// was dialed WithTrace and the serving nodes record spans: the
	// router's scatter/gather span, each shard fragment's, and the
	// repository's for shipped work. Empty against untraced peers.
	TraceID uint64
	Spans   []netproto.TraceSpan
}

// Outcome pairs a query's result with its error for async delivery.
type Outcome struct {
	Result *Result
	Err    error
}

// Query submits a query and waits for its result.
func (c *Client) Query(ctx context.Context, q model.Query) (*Result, error) {
	return c.query(ctx, netproto.QueryMsg{Query: q})
}

// query is the shared round trip behind Query and QueryRegion.
func (c *Client) query(ctx context.Context, msg netproto.QueryMsg) (*Result, error) {
	if msg.Query.ID == 0 {
		msg.Query.ID = model.QueryID(c.nextID.Add(1))
	}
	if c.trace && msg.TraceID == 0 {
		msg.TraceID = c.traceSeed + c.traceCtr.Add(1)
		if msg.TraceID == 0 { // zero means untraced on the wire
			msg.TraceID = 1
		}
	}
	start := time.Now()
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	reply, err := c.sess.RoundTrip(ctx, netproto.Frame{Type: netproto.MsgQuery, Body: msg})
	if err != nil {
		return nil, fmt.Errorf("client: query: %w", err)
	}
	body, ok := reply.Body.(netproto.QueryResultMsg)
	if !ok {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if c.observer != nil {
		c.observer(time.Since(start))
	}
	return &Result{
		Source:        body.Source,
		Logical:       int64(body.Logical),
		Rows:          body.Rows,
		Elapsed:       body.Elapsed,
		Degraded:      body.Degraded,
		MissingShards: body.MissingShards,
		TraceID:       body.TraceID,
		Spans:         body.Spans,
	}, nil
}

// QueryRegion submits a query restricted to a sky cap (center RA/Dec
// and radius, in degrees) instead of an explicit object list: the
// serving cache or router resolves the region to B(q) through its
// memoized HTM cover cache, so the client needs no local copy of the
// object universe. q.Objects must be empty; q.Cost still names ν(q).
func (c *Client) QueryRegion(ctx context.Context, ra, dec, radiusDeg float64, q model.Query) (*Result, error) {
	if len(q.Objects) != 0 {
		return nil, fmt.Errorf("client: region query must not carry an object list")
	}
	return c.query(ctx, netproto.QueryMsg{
		Query:  q,
		Region: netproto.SkyRegion{RA: ra, Dec: dec, RadiusDeg: radiusDeg},
	})
}

// QueryAsync submits a query without blocking and delivers its outcome
// on the returned channel (buffered; the result is never lost if the
// caller reads late).
func (c *Client) QueryAsync(ctx context.Context, q model.Query) <-chan Outcome {
	ch := make(chan Outcome, 1)
	go func() {
		res, err := c.Query(ctx, q)
		ch <- Outcome{Result: res, Err: err}
	}()
	return ch
}

// QueryBatch submits all queries concurrently and waits for every
// outcome. The results slice is parallel to qs; the returned error is
// the first failure (the remaining queries still ran to completion).
func (c *Client) QueryBatch(ctx context.Context, qs []model.Query) ([]*Result, error) {
	chans := make([]<-chan Outcome, len(qs))
	for i, q := range qs {
		chans[i] = c.QueryAsync(ctx, q)
	}
	results := make([]*Result, len(qs))
	var firstErr error
	for i, ch := range chans {
		out := <-ch
		results[i] = out.Result
		if out.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("query %d: %w", i, out.Err)
		}
	}
	return results, firstErr
}

// AddObjects publishes newly born data objects into the deployment:
// the receiving cache or router forwards them to the repository (the
// source of truth for the growing universe) and admits them into its
// own routing/policy universe before replying, so the publisher can
// query its newborns the moment this returns. Publication is
// idempotent — births already known are skipped — and the returned
// count is how many the repository newly ingested.
func (c *Client) AddObjects(ctx context.Context, births []model.Birth) (int, error) {
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	reply, err := c.sess.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgObjectBirth,
		Body: netproto.ObjectBirthMsg{Births: births},
	})
	if err != nil {
		return 0, fmt.Errorf("client: add objects: %w", err)
	}
	body, ok := reply.Body.(netproto.ObjectBirthMsg)
	if !ok {
		return 0, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return body.Accepted, nil
}

// Stats fetches the middleware's statistics.
func (c *Client) Stats(ctx context.Context) (*netproto.StatsMsg, error) {
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	reply, err := c.sess.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgStats,
		Body: netproto.StatsMsg{},
	})
	if err != nil {
		return nil, fmt.Errorf("client: stats: %w", err)
	}
	stats, ok := reply.Body.(netproto.StatsMsg)
	if !ok {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return &stats, nil
}

// ClusterStats fetches the cluster-wide statistics view: per-shard
// StatsMsg plus the aggregate. A single (unsharded) cache answers as a
// one-shard cluster.
func (c *Client) ClusterStats(ctx context.Context) (*netproto.ClusterStatsMsg, error) {
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	reply, err := c.sess.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgClusterStats,
		Body: netproto.ClusterStatsMsg{},
	})
	if err != nil {
		return nil, fmt.Errorf("client: cluster stats: %w", err)
	}
	stats, ok := reply.Body.(netproto.ClusterStatsMsg)
	if !ok {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return &stats, nil
}

// Resize asks a cluster router to take the cluster to a new shard
// address list, live (see cluster.ResizeSpec for the semantics:
// continuing addresses keep their cached state, new addresses join
// warm via migration, missing addresses are drained). It blocks until
// the resize completes and returns the final rebalance status; pass a
// context with a deadline generous enough for the migration. Only
// routers answer it — a single cache replies with an error.
func (c *Client) Resize(ctx context.Context, shards []string) (*netproto.RebalanceStatusMsg, error) {
	reply, err := c.sess.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgAdminResize,
		Body: netproto.AdminResizeMsg{Shards: shards},
	})
	if err != nil {
		return nil, fmt.Errorf("client: resize: %w", err)
	}
	st, ok := reply.Body.(netproto.RebalanceStatusMsg)
	if !ok {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return &st, nil
}

// RebalanceStatus fetches a cluster router's rebalance progress view
// (phase, routing epoch, moved objects/bytes, last error).
func (c *Client) RebalanceStatus(ctx context.Context) (*netproto.RebalanceStatusMsg, error) {
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	reply, err := c.sess.RoundTrip(ctx, netproto.Frame{
		Type: netproto.MsgRebalanceStatus,
		Body: netproto.RebalanceStatusMsg{},
	})
	if err != nil {
		return nil, fmt.Errorf("client: rebalance status: %w", err)
	}
	st, ok := reply.Body.(netproto.RebalanceStatusMsg)
	if !ok {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return &st, nil
}

func (c *Client) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.requestTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.requestTimeout)
}
