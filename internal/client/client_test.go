package client

import (
	"net"
	"testing"

	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should fail")
	}
}

// TestQueryAgainstFakeCache exercises the client against a minimal
// hand-rolled cache endpoint (the full path is covered by the
// internal/cache integration tests).
func TestQueryAgainstFakeCache(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		c := netproto.NewConn(conn)
		if _, err := c.Recv(); err != nil { // hello
			return
		}
		f, err := c.Recv() // query
		if err != nil {
			return
		}
		q := f.Body.(netproto.QueryMsg).Query
		_ = c.Send(netproto.Frame{Type: netproto.MsgQueryResult, Body: netproto.QueryResultMsg{
			QueryID: q.ID,
			Logical: q.Cost,
			Source:  "cache",
		}})
		f, err = c.Recv() // second query -> error reply
		if err != nil {
			return
		}
		_ = f
		_ = c.Send(netproto.Frame{Type: netproto.MsgError, Body: netproto.ErrorMsg{Message: "boom"}})
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Query(model.Query{Objects: []model.ObjectID{1}, Cost: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" || res.Logical != 42 {
		t.Errorf("result = %+v", res)
	}

	if _, err := cl.Query(model.Query{Objects: []model.ObjectID{1}, Cost: 1}); err == nil {
		t.Error("error frame should surface as an error")
	}
}

// TestQueryAssignsIDs verifies the client fills in missing query IDs.
func TestQueryAssignsIDs(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ids := make(chan model.QueryID, 2)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		c := netproto.NewConn(conn)
		if _, err := c.Recv(); err != nil {
			return
		}
		for i := 0; i < 2; i++ {
			f, err := c.Recv()
			if err != nil {
				return
			}
			q := f.Body.(netproto.QueryMsg).Query
			ids <- q.ID
			_ = c.Send(netproto.Frame{Type: netproto.MsgQueryResult, Body: netproto.QueryResultMsg{
				QueryID: q.ID, Source: "cache",
			}})
		}
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		if _, err := cl.Query(model.Query{Objects: []model.ObjectID{1}, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	a, b := <-ids, <-ids
	if a == 0 || b == 0 || a == b {
		t.Errorf("auto-assigned IDs wrong: %d, %d", a, b)
	}
}
