package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

func TestDialFailure(t *testing.T) {
	// Retry disabled: a refused dial must fail immediately.
	if _, err := Dial("127.0.0.1:1", WithDialTimeout(time.Second), WithDialRetry(-1)); err == nil {
		t.Error("dialing a closed port should fail")
	}
}

// TestDialRetriesRefusedConnection starts the cache endpoint after the
// client begins dialing: the default backoff-with-jitter retry must
// ride out the startup race (the failure mode of a router spawned
// alongside its shards).
func TestDialRetriesRefusedConnection(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	go func() {
		time.Sleep(250 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := netproto.NewConn(conn)
		if _, err := c.Recv(); err != nil {
			return
		}
		_ = c.Send(netproto.Frame{Type: netproto.MsgHelloAck, Body: netproto.HelloAck{Version: netproto.ProtoV2}})
	}()
	cl, err := Dial(addr) // default retry window covers the 250ms gap
	if err != nil {
		t.Fatalf("dial with default retry failed: %v", err)
	}
	cl.Close()
}

// fakeCache runs a minimal v2 cache endpoint: it acknowledges the
// handshake and answers each query via handle (concurrently, echoing
// RequestIDs), until the connection closes.
func fakeCache(t *testing.T, handle func(f netproto.Frame) netproto.Frame) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				c := netproto.NewConn(conn)
				if _, err := c.Recv(); err != nil { // hello
					return
				}
				if err := c.Send(netproto.Frame{
					Type: netproto.MsgHelloAck,
					Body: netproto.HelloAck{Version: netproto.ProtoV2},
				}); err != nil {
					return
				}
				for {
					f, err := c.Recv()
					if err != nil {
						return
					}
					go func(f netproto.Frame) {
						reply := handle(f)
						reply.RequestID = f.RequestID
						_ = c.Send(reply)
					}(f)
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestQueryAgainstFakeCache exercises the client against a minimal
// hand-rolled cache endpoint (the full path is covered by the
// internal/cache integration tests).
func TestQueryAgainstFakeCache(t *testing.T) {
	addr := fakeCache(t, func(f netproto.Frame) netproto.Frame {
		q := f.Body.(netproto.QueryMsg).Query
		if q.Cost == 1 {
			return netproto.Frame{Type: netproto.MsgError, Body: netproto.ErrorMsg{Message: "boom"}}
		}
		return netproto.Frame{Type: netproto.MsgQueryResult, Body: netproto.QueryResultMsg{
			QueryID: q.ID,
			Logical: q.Cost,
			Source:  "cache",
		}}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	res, err := cl.Query(ctx, model.Query{Objects: []model.ObjectID{1}, Cost: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "cache" || res.Logical != 42 {
		t.Errorf("result = %+v", res)
	}

	if _, err := cl.Query(ctx, model.Query{Objects: []model.ObjectID{1}, Cost: 1}); err == nil {
		t.Error("error frame should surface as an error")
	}
}

// TestQueryAssignsIDs verifies the client fills in missing query IDs.
func TestQueryAssignsIDs(t *testing.T) {
	ids := make(chan model.QueryID, 2)
	addr := fakeCache(t, func(f netproto.Frame) netproto.Frame {
		q := f.Body.(netproto.QueryMsg).Query
		ids <- q.ID
		return netproto.Frame{Type: netproto.MsgQueryResult, Body: netproto.QueryResultMsg{
			QueryID: q.ID, Source: "cache",
		}}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := cl.Query(ctx, model.Query{Objects: []model.ObjectID{1}, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	a, b := <-ids, <-ids
	if a == 0 || b == 0 || a == b {
		t.Errorf("auto-assigned IDs wrong: %d, %d", a, b)
	}
}

// TestQueryBatchAndAsync runs many queries concurrently through one
// client and checks every outcome arrives, in order for the batch.
func TestQueryBatchAndAsync(t *testing.T) {
	addr := fakeCache(t, func(f netproto.Frame) netproto.Frame {
		q := f.Body.(netproto.QueryMsg).Query
		return netproto.Frame{Type: netproto.MsgQueryResult, Body: netproto.QueryResultMsg{
			QueryID: q.ID, Logical: q.Cost, Source: "cache",
		}}
	})
	cl, err := Dial(addr, WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	qs := make([]model.Query, 16)
	for i := range qs {
		qs[i] = model.Query{Objects: []model.ObjectID{1}, Cost: cost.Bytes(100 + i)}
	}
	results, err := cl.QueryBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || res.Logical != 100+int64(i) {
			t.Fatalf("batch result %d = %+v", i, res)
		}
	}

	out := <-cl.QueryAsync(ctx, model.Query{Objects: []model.ObjectID{1}, Cost: 7})
	if out.Err != nil || out.Result.Logical != 7 {
		t.Fatalf("async outcome = %+v", out)
	}
}

// TestQueryContextCancel verifies an abandoned request unblocks when
// its context is cancelled even though the server never replies.
func TestQueryContextCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addr := fakeCache(t, func(f netproto.Frame) netproto.Frame {
		<-block // never answer while the test runs
		return netproto.Frame{Type: netproto.MsgError, Body: netproto.ErrorMsg{Message: "late"}}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.Query(ctx, model.Query{Objects: []model.ObjectID{1}, Cost: 2}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
}
