// Command delta-benchdiff turns the BENCH_*.json artifacts the
// benchmarks emit into a tracked performance trajectory: it compares
// the current run's files against the previous run's, renders a
// markdown table (for $GITHUB_STEP_SUMMARY), and flags throughput
// regressions beyond a threshold.
//
//	delta-benchdiff -prev prev/ -cur . -max-regress 0.25 -summary "$GITHUB_STEP_SUMMARY"
//
// Metrics are discovered generically: every numeric leaf of each JSON
// file becomes a dotted-path metric, so new benchmarks join the
// trajectory by writing a BENCH_*.json, with no changes here. Keys
// matching -throughput-keys (default: anything containing
// "queriespersec", "qps" or "hitrate", case-insensitively) are
// higher-is-better and participate in regression checks; timestamps
// and other metadata are compared but never flagged.
//
// By default a regression prints a GitHub warning annotation
// (::warning::) and exits 0 — single-iteration benchmarks on shared
// CI runners are noisy, and a trajectory that cries wolf gets
// ignored. Pass -strict to exit 1 instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		prevDir   = flag.String("prev", "", "directory with the previous run's BENCH_*.json (empty or missing: first run, nothing to compare)")
		curDir    = flag.String("cur", ".", "directory with the current run's BENCH_*.json")
		maxReg    = flag.Float64("max-regress", 0.25, "maximum tolerated fractional drop in throughput metrics")
		strict    = flag.Bool("strict", false, "exit 1 on regression instead of printing a ::warning:: annotation")
		summary   = flag.String("summary", "", "append the markdown trajectory table to this file (e.g. $GITHUB_STEP_SUMMARY); empty: stdout")
		keyExpr   = flag.String("throughput-keys", "(?i)queriespersec|qps|hitrate", "regexp selecting higher-is-better metrics for the regression check")
		skipExpr  = flag.String("skip-keys", "(?i)timestamp", "regexp selecting metrics to omit entirely")
		benchGlob = flag.String("glob", "BENCH_*.json", "artifact filename pattern")
	)
	flag.Parse()
	thrRe, err := regexp.Compile(*keyExpr)
	if err != nil {
		return fmt.Errorf("bad -throughput-keys: %w", err)
	}
	skipRe, err := regexp.Compile(*skipExpr)
	if err != nil {
		return fmt.Errorf("bad -skip-keys: %w", err)
	}

	curFiles, err := filepath.Glob(filepath.Join(*curDir, *benchGlob))
	if err != nil {
		return err
	}
	if len(curFiles) == 0 {
		return fmt.Errorf("no %s under %s — did the benchmarks run?", *benchGlob, *curDir)
	}
	sort.Strings(curFiles)

	var b strings.Builder
	b.WriteString("## Benchmark trajectory\n\n")
	b.WriteString("| benchmark | metric | previous | current | Δ |\n")
	b.WriteString("|---|---|---:|---:|---:|\n")
	var regressions []string
	for _, curFile := range curFiles {
		name := filepath.Base(curFile)
		cur, err := flattenFile(curFile)
		if err != nil {
			return fmt.Errorf("%s: %w", curFile, err)
		}
		prev := map[string]float64{}
		if *prevDir != "" {
			if p, err := flattenFile(filepath.Join(*prevDir, name)); err == nil {
				prev = p
			}
		}
		keys := make([]string, 0, len(cur))
		for k := range cur {
			if !skipRe.MatchString(k) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			curV := cur[k]
			prevV, hasPrev := prev[k]
			delta := "n/a"
			if hasPrev && prevV != 0 {
				pct := (curV - prevV) / prevV * 100
				delta = fmt.Sprintf("%+.1f%%", pct)
				if thrRe.MatchString(k) && curV < prevV*(1-*maxReg) {
					regressions = append(regressions,
						fmt.Sprintf("%s %s: %.2f → %.2f (%.1f%% drop, threshold %.0f%%)",
							name, k, prevV, curV, -pct, *maxReg*100))
				}
			}
			prevS := "—"
			if hasPrev {
				prevS = trimFloat(prevV)
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", name, k, prevS, trimFloat(curV), delta)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(&b, "\n**⚠ %d throughput regression(s) beyond %.0f%%:**\n\n", len(regressions), *maxReg*100)
		for _, r := range regressions {
			fmt.Fprintf(&b, "- %s\n", r)
		}
	} else {
		b.WriteString("\nNo throughput regressions beyond the threshold.\n")
	}

	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(b.String()); err != nil {
			return err
		}
	} else {
		fmt.Print(b.String())
	}

	for _, r := range regressions {
		// GitHub annotation: shows on the workflow run and the PR.
		fmt.Printf("::warning title=bench regression::%s\n", r)
	}
	if *strict && len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s)", len(regressions))
	}
	return nil
}

// flattenFile reads a JSON document and flattens every numeric leaf to
// a dotted-path metric. Array elements prefer a discriminating sibling
// field (e.g. rows with {"shards": 4, ...} flatten to rows[shards=4])
// so trajectories stay aligned when rows reorder.
func flattenFile(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	flatten("", doc, out)
	return out, nil
}

// labelFields are sibling keys tried, in order, to label array
// elements stably.
var labelFields = []string{"shards", "name", "mode", "id"}

func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flatten(key, sub, out)
		}
	case []any:
		for i, sub := range t {
			label := fmt.Sprintf("%d", i)
			if m, ok := sub.(map[string]any); ok {
				for _, lf := range labelFields {
					if lv, ok := m[lf]; ok {
						label = fmt.Sprintf("%s=%v", lf, lv)
						break
					}
				}
			}
			flatten(fmt.Sprintf("%s[%s]", prefix, label), sub, out)
		}
	case float64:
		out[prefix] = t
	}
}

// trimFloat renders a float compactly (integers without decimals).
func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.3f", f)
}
