// Command delta-server runs a Delta repository node: it hosts the
// synthetic survey, listens for cache/client connections, and — when
// -pipeline-rate is set — feeds itself synthetic telescope updates, so a
// full deployment can be demonstrated without external drivers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
	"github.com/deltacache/delta/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:7707", "listen address")
		objects      = flag.Int("objects", 68, "number of data objects")
		seed         = flag.Int64("seed", 2, "survey seed")
		pipelineRate = flag.Duration("pipeline-rate", 0, "feed one synthetic update per interval (0 = off)")
		bytesPerGB   = flag.Int64("bytes-per-gb", 4096, "physical payload bytes per logical GB")
		wireVer      = flag.Int("wire-version", 0, "cap the negotiated wire version (0 = newest/v3 binary codec; 2 pins gob v2)")
		dataDir      = flag.String("data-dir", "", "directory for grown-universe snapshots and the birth journal; restarts recover births from it (empty = no persistence)")
		snapEvery    = flag.Duration("snapshot-interval", 0, "periodic snapshot interval with -data-dir (0 = 30s default)")
		metricsAddr  = flag.String("metrics-addr", "", "debug HTTP address serving /metrics, /healthz, /debug/traces and /debug/pprof (empty = off)")
		replicas     = flag.Int("replicas", 1, "advertise the deployment's cache replication factor K in stats (informational)")
	)
	flag.Parse()

	scfg := catalog.DefaultConfig()
	scfg.Seed = *seed
	scfg.NumObjects = *objects
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return err
	}
	repo, err := server.New(server.Config{
		Addr:             *addr,
		Survey:           survey,
		Scale:            netproto.PayloadScale{BytesPerGB: *bytesPerGB},
		WireVersion:      *wireVer,
		Replicas:         *replicas,
		DataDir:          *dataDir,
		SnapshotInterval: *snapEvery,
		MetricsAddr:      *metricsAddr,
		Logf:             log.Printf,
	})
	if err != nil {
		return err
	}
	if err := repo.Start(); err != nil {
		return err
	}
	log.Printf("repository ready on %s (%d objects, %v total)",
		repo.Addr(), survey.NumObjects(), survey.TotalSize())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	done := make(chan struct{})
	if *pipelineRate > 0 {
		go feedPipeline(repo, survey, *seed, *pipelineRate, done)
	}

	<-stop
	close(done)
	log.Printf("shutting down; final ledger: %+v (dropped invalidations: %d)",
		repo.Ledger(), repo.DroppedInvalidations())
	return repo.Close()
}

// feedPipeline generates an endless synthetic update stream using the
// workload generator's update model.
func feedPipeline(repo *server.Repository, survey *catalog.Survey, seed int64, rate time.Duration, done <-chan struct{}) {
	wcfg := workload.DefaultConfig()
	wcfg.Seed = seed
	// Pre-generate a long update-only trace and loop over it.
	wcfg.NumQueries = 0
	wcfg.NumUpdates = 100_000
	gen, err := workload.NewGenerator(survey, wcfg)
	if err != nil {
		log.Printf("pipeline: %v", err)
		return
	}
	events, err := gen.Generate()
	if err != nil {
		log.Printf("pipeline: %v", err)
		return
	}
	ticker := time.NewTicker(rate)
	defer ticker.Stop()
	i := 0
	var idBase model.UpdateID
	start := time.Now()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			u := *events[i%len(events)].Update
			u.ID += idBase
			u.Time = time.Since(start)
			repo.ApplyUpdate(u)
			i++
			if i%len(events) == 0 {
				idBase += model.UpdateID(len(events))
			}
		}
	}
}
