// Command delta-bench regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment writes a CSV under -outdir and
// prints a markdown summary to stdout; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
//	delta-bench -exp all -scale 0.2 -outdir results/
//	delta-bench -exp fig7b -scale 1            # the full 500k-event run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "all", "experiment: fig7a|fig7b|fig8a|fig8b|cachesize|window|warmup|all")
		scale  = flag.Float64("scale", 0.2, "workload scale (1 = the paper's 500k events)")
		outdir = flag.String("outdir", "results", "directory for CSV output")
		seed   = flag.Int64("seed", 0, "workload seed (0 = reference trace)")
	)
	flag.Parse()

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	opts := experiments.Options{Scale: *scale, Seed: *seed}

	runOne := func(name string, fn func() error) error {
		start := time.Now()
		fmt.Printf("## %s\n", name)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	all := *exp == "all"
	if all || *exp == "fig7a" {
		if err := runOne("fig7a", func() error { return fig7a(opts, *outdir) }); err != nil {
			return err
		}
	}
	if all || *exp == "fig7b" {
		if err := runOne("fig7b", func() error { return fig7b(opts, *outdir) }); err != nil {
			return err
		}
	}
	if all || *exp == "fig8a" {
		if err := runOne("fig8a", func() error { return fig8a(opts, *outdir) }); err != nil {
			return err
		}
	}
	if all || *exp == "fig8b" {
		if err := runOne("fig8b", func() error { return fig8b(opts, *outdir) }); err != nil {
			return err
		}
	}
	if all || *exp == "cachesize" {
		if err := runOne("cachesize", func() error { return cacheSize(opts, *outdir) }); err != nil {
			return err
		}
	}
	if all || *exp == "window" {
		if err := runOne("window", func() error { return window(opts, *outdir) }); err != nil {
			return err
		}
	}
	if all || *exp == "warmup" {
		if err := runOne("warmup", func() error { return warmup(opts, *outdir) }); err != nil {
			return err
		}
	}
	return nil
}

func csvFile(outdir, name string) (*os.File, error) {
	return os.Create(filepath.Join(outdir, name))
}

func fig7a(opts experiments.Options, outdir string) error {
	s, err := experiments.NewSetup(opts)
	if err != nil {
		return err
	}
	f, err := csvFile(outdir, "fig7a_scatter.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.Fig7a(s, f); err != nil {
		return err
	}
	fmt.Printf("scatter written to %s (plot event vs object, colored by kind)\n", f.Name())
	return nil
}

func fig7b(opts experiments.Options, outdir string) error {
	s, err := experiments.NewSetup(opts)
	if err != nil {
		return err
	}
	rows, results, err := experiments.Fig7b(s)
	if err != nil {
		return err
	}
	f, err := csvFile(outdir, "fig7b_cumulative.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "event,%s\n", strings.Join(experiments.PolicyNames, ","))
	for _, row := range rows {
		fmt.Fprintf(f, "%d", row.Seq)
		for _, name := range experiments.PolicyNames {
			fmt.Fprintf(f, ",%.3f", row.Totals[name].GBf())
		}
		fmt.Fprintln(f)
	}

	post := experiments.PostWarmup(results, 0.5)
	fmt.Println("| policy | full-trace traffic | post-warmup traffic |")
	fmt.Println("|---|---|---|")
	for _, name := range experiments.PolicyNames {
		fmt.Printf("| %s | %v | %v |\n", name, results[name].Total(), post[name])
	}
	vc, nc := post["VCover"], post["NoCache"]
	if nc > 0 {
		fmt.Printf("\nVCover/NoCache post-warmup = %.2f (paper: ~0.5)\n", float64(vc)/float64(nc))
	}
	return nil
}

func fig8a(opts experiments.Options, outdir string) error {
	base := int(250_000 * opts.Scale)
	counts := []int{base / 2, 3 * base / 4, base, 5 * base / 4, 3 * base / 2}
	rows, err := experiments.Fig8a(opts, counts)
	if err != nil {
		return err
	}
	f, err := csvFile(outdir, "fig8a_updates.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "updates,%s,%s\n",
		strings.Join(experiments.PolicyNames, ","),
		"post_"+strings.Join(experiments.PolicyNames, ",post_"))
	fmt.Println("post-warmup totals (the regime the paper plots):")
	fmt.Println("| updates | " + strings.Join(experiments.PolicyNames, " | ") + " |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, row := range rows {
		fmt.Fprintf(f, "%d", row.NumUpdates)
		fmt.Printf("| %d ", row.NumUpdates)
		for _, name := range experiments.PolicyNames {
			fmt.Fprintf(f, ",%.3f", row.Totals[name].GBf())
		}
		for _, name := range experiments.PolicyNames {
			fmt.Fprintf(f, ",%.3f", row.PostTotals[name].GBf())
			fmt.Printf("| %v ", row.PostTotals[name])
		}
		fmt.Fprintln(f)
		fmt.Println("|")
	}
	return nil
}

func fig8b(opts experiments.Options, outdir string) error {
	counts := []int{10, 20, 68, 91, 134, 285, 532}
	rows, err := experiments.Fig8b(opts, counts)
	if err != nil {
		return err
	}
	f, err := csvFile(outdir, "fig8b_granularity.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "objects,finalGB")
	fmt.Println("| objects | VCover final traffic |")
	fmt.Println("|---|---|")
	for _, row := range rows {
		fmt.Fprintf(f, "%d,%.3f\n", row.NumObjects, row.Final.GBf())
		fmt.Printf("| %d | %v |\n", row.NumObjects, row.Final)
	}
	// Full series per granularity for the cumulative plot.
	fs, err := csvFile(outdir, "fig8b_series.csv")
	if err != nil {
		return err
	}
	defer fs.Close()
	fmt.Fprintln(fs, "objects,event,totalGB")
	for _, row := range rows {
		for _, pt := range row.Series {
			fmt.Fprintf(fs, "%d,%d,%.3f\n", row.NumObjects, pt.Seq, pt.Total.GBf())
		}
	}
	return nil
}

func cacheSize(opts experiments.Options, outdir string) error {
	fracs := []float64{0.1, 0.2, 0.3, 0.5, 1.0}
	rows, err := experiments.CacheSize(opts, fracs)
	if err != nil {
		return err
	}
	f, err := csvFile(outdir, "cachesize.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "cacheFrac,%s,%s\n",
		strings.Join(experiments.PolicyNames, ","),
		"post_"+strings.Join(experiments.PolicyNames, ",post_"))
	fmt.Println("post-warmup totals:")
	fmt.Println("| cache fraction | " + strings.Join(experiments.PolicyNames, " | ") + " |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, row := range rows {
		fmt.Fprintf(f, "%.2f", row.CacheFrac)
		fmt.Printf("| %.0f%% ", row.CacheFrac*100)
		for _, name := range experiments.PolicyNames {
			fmt.Fprintf(f, ",%.3f", row.Totals[name].GBf())
		}
		for _, name := range experiments.PolicyNames {
			fmt.Fprintf(f, ",%.3f", row.PostTotals[name].GBf())
			fmt.Printf("| %v ", row.PostTotals[name])
		}
		fmt.Fprintln(f)
		fmt.Println("|")
	}
	return nil
}

func window(opts experiments.Options, outdir string) error {
	windows := []int{50, 200, 1000, 5000, 20000}
	rows, err := experiments.BenefitWindowSweep(opts, windows)
	if err != nil {
		return err
	}
	f, err := csvFile(outdir, "benefit_window.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "window,totalGB")
	fmt.Println("| δ (events) | Benefit total traffic |")
	fmt.Println("|---|---|")
	for _, row := range rows {
		fmt.Fprintf(f, "%d,%.3f\n", row.Window, row.Total.GBf())
		fmt.Printf("| %d | %v |\n", row.Window, row.Total)
	}
	return nil
}

func warmup(opts experiments.Options, outdir string) error {
	rows, err := experiments.Warmup(opts, []int64{1, 2, 3, 4, 5})
	if err != nil {
		return err
	}
	f, err := csvFile(outdir, "warmup.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "seed,warmupEvents,finalUsedGB")
	fmt.Println("| seed | warm-up events | final cache occupancy |")
	fmt.Println("|---|---|---|")
	for _, row := range rows {
		fmt.Fprintf(f, "%d,%d,%.3f\n", row.Seed, row.WarmupEvents, row.FinalUsed.GBf())
		fmt.Printf("| %d | %d | %v |\n", row.Seed, row.WarmupEvents, row.FinalUsed)
	}
	return nil
}

var _ = cost.GB
