package main

import (
	"context"
	"testing"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
	"github.com/deltacache/delta/internal/workload"
)

// TestRunScenarioSmoke drives every registered scenario through the
// -scenario replay path against a live loopback deployment: each named
// trace must complete without a failed query or birth. This is the CLI
// counterpart of the scenario suite — it catches a scenario whose event
// stream the client-side replay can't serve (e.g. a query referencing
// an unpublished newborn).
func TestRunScenarioSmoke(t *testing.T) {
	cfg := catalog.DefaultConfig()
	survey, err := catalog.NewSurvey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   2,
		Mode:     cluster.HTMAware,
		// Headroom for growth-spurt births: newborns stay cacheable.
		ShardCapacity: 2 * cfg.TotalSize,
		Scale:         netproto.PayloadScale{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	cl, err := client.DialCluster(lc.Router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	scenarios := workload.Scenarios()
	if len(scenarios) == 0 {
		t.Fatal("no registered scenarios")
	}
	for _, sc := range scenarios {
		t.Run(sc.Name(), func(t *testing.T) {
			if sc.Description() == "" {
				t.Errorf("scenario %s has no description", sc.Name())
			}
			if err := runScenario(context.Background(), cl, survey, sc.Name(), 48, 16, 4); err != nil {
				t.Fatalf("replay %s: %v", sc.Name(), err)
			}
		})
	}
}

// TestRunScenarioUnknown verifies the CLI surfaces a useful error for a
// bad -scenario name instead of silently replaying nothing.
func TestRunScenarioUnknown(t *testing.T) {
	survey, err := catalog.NewSurvey(catalog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := runScenario(context.Background(), nil, survey, "no-such-scenario", 8, 0, 1); err == nil {
		t.Fatal("expected an error for an unknown scenario name")
	}
}
