// Command delta-client submits queries to a Delta deployment. It speaks
// the astronomy SQL dialect:
//
//	delta-client -cache 127.0.0.1:7708 \
//	  -sql "SELECT ra, dec FROM PhotoObj WHERE CONTAINS(POINT(180,0), CIRCLE(180,0,1)) WITH STALENESS '10m'"
//
// or drives a random demo workload with -demo N (optionally fanned out
// over -workers concurrent submitters), and prints the cache's
// statistics with -stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/obs"
	"github.com/deltacache/delta/internal/sqlmini"
	"github.com/deltacache/delta/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cacheAddr = flag.String("cache", "127.0.0.1:7708", "cache address")
		sql       = flag.String("sql", "", "SQL query to run")
		demo      = flag.Int("demo", 0, "run N random demo queries")
		workers   = flag.Int("workers", 1, "concurrent submitters for -demo")
		pool      = flag.Int("pool", 1, "connections in the session pool")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		stats     = flag.Bool("stats", false, "print cache statistics")
		cstats    = flag.Bool("cluster-stats", false, "print per-shard cluster statistics (routers; a single cache answers as one shard)")
		resize    = flag.String("resize", "", "resize the cluster live to this comma-separated shard address list (routers only)")
		rebStatus = flag.Bool("rebalance-status", false, "print the router's rebalance progress view")
		grow      = flag.Int("grow", 0, "publish N new data objects into the deployment (assumes this client is the only grower, so locally generated IDs line up)")
		growSeed  = flag.Int64("grow-seed", 1, "seed for -grow object generation")
		objects   = flag.Int("objects", 68, "objects (must match deployment)")
		seed      = flag.Int64("seed", 2, "survey seed (must match deployment)")
		wireVer   = flag.Int("wire-version", 0, "cap the negotiated wire version (0 = newest/v3 binary codec; 2 forces gob v2)")
		region    = flag.String("region", "", "query a sky region \"ra,dec,radiusDeg\" resolved server-side (no local universe needed)")
		expectK   = flag.Int("replicas", 0, "expected replication factor K; with -stats/-cluster-stats, fail if the deployment reports a different K (0 = don't check)")
		trace     = flag.Bool("trace", false, "stamp queries with a trace ID and print the per-hop fan-out tree (router scatter, shard fragments, repository work)")
		scenario  = flag.String("scenario", "", "replay a named workload scenario against the deployment (see -list-scenarios; fanned out over -workers)")
		scnQ      = flag.Int("scenario-queries", 0, "query count for -scenario (0 = the scenario's default)")
		scnU      = flag.Int("scenario-updates", 0, "update count for -scenario (0 = the scenario's default; repository-side updates are skipped by the client)")
		listScens = flag.Bool("list-scenarios", false, "list the named workload scenarios and exit")
	)
	flag.Parse()
	ctx := context.Background()

	if *listScens {
		for _, sc := range workload.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name(), sc.Description())
		}
		return nil
	}

	scfg := catalog.DefaultConfig()
	scfg.Seed = *seed
	scfg.NumObjects = *objects
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return err
	}

	opts := []client.Option{
		client.WithPoolSize(*pool),
		client.WithRequestTimeout(*timeout),
		client.WithWireVersion(*wireVer),
	}
	if *trace {
		opts = append(opts, client.WithTrace())
	}
	// The demo keeps a client-side latency histogram: the end-to-end
	// wall-clock view including the network, where the per-result
	// Elapsed is only server-side handling time.
	var demoLat *obs.Histogram
	if *demo > 0 || *scenario != "" {
		demoLat = obs.NewRegistry().NewHistogram(
			"client_query_seconds", "Client-observed query latency.", nil)
		opts = append(opts, client.WithQueryObserver(demoLat.Observe))
	}
	cl, err := client.Dial(*cacheAddr, opts...)
	if err != nil {
		return err
	}
	defer cl.Close()

	start := time.Now()
	switch {
	case *sql != "":
		if err := runSQL(ctx, cl, survey, *sql, start); err != nil {
			return err
		}
	case *region != "":
		if err := runRegion(ctx, cl, *region, start); err != nil {
			return err
		}
	case *demo > 0:
		if err := runDemo(ctx, cl, survey, *demo, *workers, start); err != nil {
			return err
		}
		printLatency(demoLat)
	case *scenario != "":
		if err := runScenario(ctx, cl, survey, *scenario, *scnQ, *scnU, *workers); err != nil {
			return err
		}
		printLatency(demoLat)
	case *resize != "":
		st, err := cl.Resize(ctx, strings.Split(*resize, ","))
		if err != nil {
			return err
		}
		printRebalance(st)
	case *grow > 0:
		rng := rand.New(rand.NewSource(*growSeed))
		// Catch the local survey mirror up with growth already
		// published (stats report how many objects the deployment has
		// admitted since its base universe), replaying the generator
		// stream so a second -grow run continues the ID sequence
		// instead of silently colliding with the first run's. Assumes
		// one grower with a stable -grow-seed.
		st, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		if st.ObjectsBorn > 0 {
			if _, err := survey.GrowObjects(rng, int(st.ObjectsBorn), 0); err != nil {
				return fmt.Errorf("replaying %d published births: %w", st.ObjectsBorn, err)
			}
		}
		births, err := survey.GrowObjects(rng, *grow, time.Since(start))
		if err != nil {
			return err
		}
		accepted, err := cl.AddObjects(ctx, births)
		if err != nil {
			return err
		}
		fmt.Printf("published %d new objects (%d newly admitted; universe now %d objects)\n",
			len(births), accepted, survey.NumObjects())
		for _, b := range births {
			fmt.Printf("  object %d: %v at ra=%.3f dec=%.3f\n", b.Object.ID, b.Object.Size, b.RA, b.Dec)
		}
	case *stats || *cstats || *rebStatus:
		// handled below
	default:
		flag.Usage()
		return fmt.Errorf("one of -sql, -region, -demo, -scenario, -list-scenarios, -stats, -cluster-stats, -resize, -rebalance-status, -grow is required")
	}

	if *stats || *demo > 0 {
		st, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("connection: negotiated wire version v%d (%s)\n",
			cl.WireVersion(), wireName(cl.WireVersion()))
		printStats(st)
		if err := checkReplicas(*expectK, st.Replicas); err != nil {
			return err
		}
	}
	if *cstats {
		cs, err := cl.ClusterStats(ctx)
		if err != nil {
			return err
		}
		printClusterStats(cs)
		if err := checkReplicas(*expectK, cs.Aggregate.Replicas); err != nil {
			return err
		}
	}
	if *rebStatus {
		st, err := cl.RebalanceStatus(ctx)
		if err != nil {
			return err
		}
		printRebalance(st)
	}
	return nil
}

// printClusterStats renders the per-shard breakdown as a table plus a
// hit-rate spread summary (an unbalanced spread is the first sign one
// shard's working set outgrew its cache).
func printClusterStats(cs *netproto.ClusterStatsMsg) {
	degraded := ""
	if cs.Degraded {
		degraded = " DEGRADED"
	}
	fmt.Printf("cluster: %d shards%s\n", len(cs.Shards), degraded)
	fmt.Printf("  %-5s %-21s %9s %9s %8s %8s %6s %7s %8s %10s\n",
		"shard", "addr", "queries", "hit-rate", "cached", "shipped", "born", "mig-in", "mig-out", "traffic")
	var rates []float64
	for _, sh := range cs.Shards {
		if !sh.Alive {
			fmt.Printf("  %-5d %-21s DOWN (%s)\n", sh.Shard, sh.Addr, sh.Err)
			continue
		}
		var rate float64
		if sh.Stats.Queries > 0 {
			rate = float64(sh.Stats.AtCache) / float64(sh.Stats.Queries)
		}
		rates = append(rates, rate)
		fmt.Printf("  %-5d %-21s %9d %8.1f%% %8d %8d %6d %7d %8d %10v\n",
			sh.Shard, sh.Addr, sh.Stats.Queries, rate*100, len(sh.Stats.Cached),
			sh.Stats.Shipped, sh.Stats.ObjectsBorn, sh.Stats.MigratedIn,
			sh.Stats.MigratedOut, sh.Stats.Ledger.Total())
	}
	if len(rates) > 0 {
		lo, hi, sum := rates[0], rates[0], 0.0
		for _, r := range rates {
			sum += r
			lo = min(lo, r)
			hi = max(hi, r)
		}
		fmt.Printf("  hit-rate across %d live shards: min=%.1f%% mean=%.1f%% max=%.1f%%\n",
			len(rates), lo*100, sum/float64(len(rates))*100, hi*100)
	}
	fmt.Println("aggregate:")
	printStats(&cs.Aggregate)
}

// printTrace renders a traced query's fan-out tree.
func printTrace(res *client.Result) {
	if res.TraceID == 0 || len(res.Spans) == 0 {
		return
	}
	fmt.Printf("trace %#x:\n%s", res.TraceID, obs.FormatSpans(res.Spans))
}

// quantileDur converts a histogram quantile (seconds) to a rounded
// duration for display.
func quantileDur(h *obs.Histogram, p float64) time.Duration {
	return time.Duration(h.Quantile(p) * float64(time.Second)).Round(10 * time.Microsecond)
}

func printRebalance(st *netproto.RebalanceStatusMsg) {
	fmt.Printf("rebalance: phase=%s epoch=%d shards %d→%d moved=%d objects (%v) completed=%d\n",
		st.Phase, st.Epoch, st.From, st.To, st.MovedObjects, st.MovedBytes, st.Completed)
	if st.LastError != "" {
		fmt.Printf("  last error: %s\n", st.LastError)
	}
}

// wireName renders a negotiated wire version for humans.
func wireName(v int) string {
	switch v {
	case netproto.ProtoV3:
		return "binary codec"
	case netproto.ProtoV2:
		return "gob, multiplexed"
	default:
		return "gob, lockstep"
	}
}

func printStats(st *netproto.StatsMsg) {
	fmt.Printf("policy=%s queries=%d atCache=%d shipped=%d\n",
		st.Policy, st.Queries, st.AtCache, st.Shipped)
	fmt.Printf("traffic: query-ship=%v update-ship=%v loads=%v total=%v\n",
		st.Ledger.QueryShip, st.Ledger.UpdateShip, st.Ledger.ObjectLoad, st.Ledger.Total())
	fmt.Printf("health: dropped-invalidations=%d singleflight-deduped-loads=%d migrated-in=%d migrated-out=%d objects-born=%d\n",
		st.DroppedInvalidations, st.DedupedLoads, st.MigratedIn, st.MigratedOut, st.ObjectsBorn)
	fmt.Printf("cover cache: hits=%d misses=%d\n", st.CoverCacheHits, st.CoverCacheMisses)
	fmt.Printf("result cache: hits=%d misses=%d coalesced=%d grant-batches=%d\n",
		st.ResultCacheHits, st.ResultCacheMisses, st.CoalescedQueries, st.GrantBatches)
	fmt.Printf("persistence: snapshot-age=%v journal-records=%d recovered-warm=%d\n",
		st.SnapshotAge.Round(time.Millisecond), st.JournalRecords, st.RecoveredWarm)
	fmt.Printf("replication: K=%d\n", max(st.Replicas, 1))
	fmt.Printf("cached objects: %v\n", st.Cached)
}

// checkReplicas audits the deployment's reported replication factor
// against the -replicas expectation (a shard started with the wrong
// -replicas silently computes a different ownership map — this is the
// cheap way to catch it from the outside).
func checkReplicas(want int, got int64) error {
	if want <= 0 {
		return nil
	}
	if reported := max(got, 1); reported != int64(want) {
		return fmt.Errorf("deployment reports replication factor K=%d, expected K=%d", reported, want)
	}
	return nil
}

// runRegion submits one sky-region query resolved server-side: the
// cache or router maps the cap to B(q) through its memoized HTM cover
// cache, so this path needs no local survey mirror at all.
func runRegion(ctx context.Context, cl *client.Client, spec string, start time.Time) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("-region wants \"ra,dec,radiusDeg\", got %q", spec)
	}
	var ra, dec, radius float64
	if _, err := fmt.Sscanf(spec, "%f,%f,%f", &ra, &dec, &radius); err != nil {
		return fmt.Errorf("-region %q: %w", spec, err)
	}
	res, err := cl.QueryRegion(ctx, ra, dec, radius, model.Query{
		Cost:      cost.MB,
		Tolerance: model.AnyStaleness,
		Time:      time.Since(start),
	})
	if err != nil {
		return err
	}
	fmt.Printf("region (%g, %g, r=%g°) answered by %s in %v\n", ra, dec, radius, res.Source, res.Elapsed)
	printTrace(res)
	for _, row := range res.Rows {
		fmt.Printf("  objID=%d ra=%.4f dec=%.4f r=%.2f\n", row.ObjID, row.RA, row.Dec, row.R)
	}
	return nil
}

func runSQL(ctx context.Context, cl *client.Client, survey *catalog.Survey, sql string, start time.Time) error {
	st, q, err := sqlmini.Compile(sql, survey)
	if err != nil {
		return err
	}
	q.Time = time.Since(start)
	res, err := cl.Query(ctx, *q)
	if err != nil {
		return err
	}
	fmt.Printf("answered by %s in %v; result size %v; B(q)=%v\n",
		res.Source, res.Elapsed, model.Query{Cost: q.Cost}.Cost, q.Objects)
	printTrace(res)
	if st.Count {
		fmt.Println("(count query)")
	}
	for _, row := range res.Rows {
		fmt.Printf("  objID=%d ra=%.4f dec=%.4f r=%.2f\n", row.ObjID, row.RA, row.Dec, row.R)
	}
	return nil
}

func runDemo(ctx context.Context, cl *client.Client, survey *catalog.Survey, n, workers int, start time.Time) error {
	if workers < 1 {
		workers = 1
	}
	// The first error cancels the shared context so the producer and
	// the in-flight queries abort instead of grinding through the
	// rest of the demo one timeout at a time.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		atCache atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	queries := make(chan model.Query)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range queries {
				res, err := cl.Query(ctx, q)
				if err != nil {
					errOnce.Do(func() { firstEr = err; cancel() })
					continue
				}
				if res.Source == "cache" {
					atCache.Add(1)
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < n && ctx.Err() == nil; i++ {
		pos := survey.SamplePosition(rng)
		ra, dec := pos.RADec()
		radius := 0.3 + rng.Float64()*2
		sql := fmt.Sprintf(
			"SELECT objID, ra, dec, r FROM PhotoObj WHERE CONTAINS(POINT(%.3f, %.3f), CIRCLE(%.3f, %.3f, %.3f))",
			ra, dec, ra, dec, radius)
		_, q, err := sqlmini.Compile(sql, survey)
		if err != nil {
			close(queries)
			wg.Wait()
			return err
		}
		q.Time = time.Since(start)
		queries <- *q
	}
	close(queries)
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	fmt.Printf("demo: %d queries via %d workers, %d answered at cache\n",
		n, workers, atCache.Load())
	return nil
}

// runScenario replays a named workload scenario against the live
// deployment: queries fan out over the worker pool and births publish
// through the router. Repository-side updates in the trace are skipped
// — updates originate at the repository, not at clients — and reported
// so the operator knows the replay is the read/birth half of the trace.
func runScenario(ctx context.Context, cl *client.Client, survey *catalog.Survey, name string, nQueries, nUpdates, workers int) error {
	sc, err := workload.Lookup(name)
	if err != nil {
		return err
	}
	events, err := sc.Events(survey, workload.Options{
		Seed: survey.Config().Seed, Queries: nQueries, Updates: nUpdates,
	})
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		atCache atomic.Int64
		sent    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	queries := make(chan *model.Query, 4*workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range queries {
				res, err := cl.Query(ctx, *q)
				if err != nil {
					errOnce.Do(func() { firstEr = err; cancel() })
					continue
				}
				sent.Add(1)
				if res.Source == "cache" {
					atCache.Add(1)
				}
			}
		}()
	}
	var births, skippedUpdates int
	start := time.Now()
	for i := range events {
		if ctx.Err() != nil {
			break
		}
		switch ev := &events[i]; ev.Kind {
		case model.EventQuery:
			queries <- ev.Query
		case model.EventUpdate:
			skippedUpdates++
		case model.EventBirth:
			if _, err := cl.AddObjects(ctx, []model.Birth{*ev.Birth}); err != nil {
				errOnce.Do(func() { firstEr = err; cancel() })
			} else {
				births++
			}
		}
	}
	close(queries)
	wg.Wait()
	if firstEr != nil {
		return fmt.Errorf("scenario %s: %w", name, firstEr)
	}
	elapsed := time.Since(start)
	fmt.Printf("scenario %s: %d queries via %d workers in %v (%.0f q/s), %d answered at cache (%.1f%%), %d births published, %d repository-side updates skipped\n",
		name, sent.Load(), workers, elapsed.Round(time.Millisecond),
		float64(sent.Load())/elapsed.Seconds(), atCache.Load(),
		100*float64(atCache.Load())/float64(max(sent.Load(), 1)),
		births, skippedUpdates)
	return nil
}

// printLatency reports the client-observed latency quantiles collected
// by the query observer during -demo or -scenario runs.
func printLatency(h *obs.Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	fmt.Printf("client latency: p50=%s p90=%s p99=%s (%d samples)\n",
		quantileDur(h, 0.50), quantileDur(h, 0.90),
		quantileDur(h, 0.99), h.Count())
}
