// Command delta-client submits queries to a Delta deployment. It speaks
// the astronomy SQL dialect:
//
//	delta-client -cache 127.0.0.1:7708 \
//	  -sql "SELECT ra, dec FROM PhotoObj WHERE CONTAINS(POINT(180,0), CIRCLE(180,0,1)) WITH STALENESS '10m'"
//
// or drives a random demo workload with -demo N, and prints the cache's
// statistics with -stats.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/sqlmini"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cacheAddr = flag.String("cache", "127.0.0.1:7708", "cache address")
		sql       = flag.String("sql", "", "SQL query to run")
		demo      = flag.Int("demo", 0, "run N random demo queries")
		stats     = flag.Bool("stats", false, "print cache statistics")
		objects   = flag.Int("objects", 68, "objects (must match deployment)")
		seed      = flag.Int64("seed", 2, "survey seed (must match deployment)")
	)
	flag.Parse()

	scfg := catalog.DefaultConfig()
	scfg.Seed = *seed
	scfg.NumObjects = *objects
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return err
	}

	cl, err := client.Dial(*cacheAddr)
	if err != nil {
		return err
	}
	defer cl.Close()

	start := time.Now()
	switch {
	case *sql != "":
		if err := runSQL(cl, survey, *sql, start); err != nil {
			return err
		}
	case *demo > 0:
		if err := runDemo(cl, survey, *demo, start); err != nil {
			return err
		}
	case *stats:
		// handled below
	default:
		flag.Usage()
		return fmt.Errorf("one of -sql, -demo, -stats is required")
	}

	if *stats || *demo > 0 {
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("policy=%s queries=%d atCache=%d shipped=%d\n",
			st.Policy, st.Queries, st.AtCache, st.Shipped)
		fmt.Printf("traffic: query-ship=%v update-ship=%v loads=%v total=%v\n",
			st.Ledger.QueryShip, st.Ledger.UpdateShip, st.Ledger.ObjectLoad, st.Ledger.Total())
		fmt.Printf("cached objects: %v\n", st.Cached)
	}
	return nil
}

func runSQL(cl *client.Client, survey *catalog.Survey, sql string, start time.Time) error {
	st, q, err := sqlmini.Compile(sql, survey)
	if err != nil {
		return err
	}
	q.Time = time.Since(start)
	res, err := cl.Query(*q)
	if err != nil {
		return err
	}
	fmt.Printf("answered by %s in %v; result size %v; B(q)=%v\n",
		res.Source, res.Elapsed, model.Query{Cost: q.Cost}.Cost, q.Objects)
	if st.Count {
		fmt.Println("(count query)")
	}
	for _, row := range res.Rows {
		fmt.Printf("  objID=%d ra=%.4f dec=%.4f r=%.2f\n", row.ObjID, row.RA, row.Dec, row.R)
	}
	return nil
}

func runDemo(cl *client.Client, survey *catalog.Survey, n int, start time.Time) error {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var atCache int
	for i := 0; i < n; i++ {
		pos := survey.SamplePosition(rng)
		ra, dec := pos.RADec()
		radius := 0.3 + rng.Float64()*2
		sql := fmt.Sprintf(
			"SELECT objID, ra, dec, r FROM PhotoObj WHERE CONTAINS(POINT(%.3f, %.3f), CIRCLE(%.3f, %.3f, %.3f))",
			ra, dec, ra, dec, radius)
		_, q, err := sqlmini.Compile(sql, survey)
		if err != nil {
			return err
		}
		q.Time = time.Since(start)
		res, err := cl.Query(*q)
		if err != nil {
			return err
		}
		if res.Source == "cache" {
			atCache++
		}
	}
	fmt.Printf("demo: %d queries, %d answered at cache\n", n, atCache)
	return nil
}
