// Command delta-trace generates, converts and summarizes workload
// traces.
//
//	delta-trace -gen -queries 250000 -updates 250000 -out trace.gob
//	delta-trace -stats trace.gob
//	delta-trace -scatter trace.gob > fig7a.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/trace"
	"github.com/deltacache/delta/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		out     = flag.String("out", "trace.gob", "output path for -gen (.gob or .jsonl)")
		queries = flag.Int("queries", 250_000, "number of queries")
		updates = flag.Int("updates", 250_000, "number of updates")
		objects = flag.Int("objects", 68, "number of data objects")
		seed    = flag.Int64("seed", 2, "workload seed")
		statsIn = flag.String("stats", "", "summarize an existing trace file")
		scatter = flag.String("scatter", "", "write the Figure 7(a) scatter CSV for a trace file to stdout")
		sample  = flag.Int("sample", 50, "scatter sampling stride")
	)
	flag.Parse()

	switch {
	case *gen:
		return generate(*out, *queries, *updates, *objects, *seed)
	case *statsIn != "":
		events, err := readTrace(*statsIn)
		if err != nil {
			return err
		}
		fmt.Print(trace.Summarize(events).String())
		return nil
	case *scatter != "":
		events, err := readTrace(*scatter)
		if err != nil {
			return err
		}
		return trace.ScatterCSV(os.Stdout, events, *sample)
	default:
		flag.Usage()
		return fmt.Errorf("one of -gen, -stats, -scatter is required")
	}
}

func generate(out string, queries, updates, objects int, seed int64) error {
	scfg := catalog.DefaultConfig()
	scfg.Seed = seed
	scfg.NumObjects = objects
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return err
	}
	wcfg := workload.DefaultConfig()
	wcfg.Seed = seed
	wcfg.NumQueries = queries
	wcfg.NumUpdates = updates
	g, err := workload.NewGenerator(survey, wcfg)
	if err != nil {
		return err
	}
	events, err := g.Generate()
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(out, ".jsonl") {
		err = trace.WriteJSONL(f, events)
	} else {
		err = trace.WriteGob(f, events)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d events to %s\n", len(events), out)
	fmt.Print(trace.Summarize(events).String())
	return nil
}

func readTrace(path string) ([]model.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return trace.ReadJSONL(f)
	}
	return trace.ReadGob(f)
}
