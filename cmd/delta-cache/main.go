// Command delta-cache runs the Delta middleware node: the dynamic data
// cache that sits near the clients and decouples data objects between
// itself and the repository using the configured policy.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/geom"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-cache:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:7708", "client-facing listen address")
		repoAddr    = flag.String("repo", "127.0.0.1:7707", "repository address")
		policyName  = flag.String("policy", "vcover", "decoupling policy: vcover|benefit|nocache|replica")
		objects     = flag.Int("objects", 68, "number of data objects (must match the repository)")
		seed        = flag.Int64("seed", 2, "survey seed (must match the repository)")
		cacheFrac   = flag.Float64("cache-frac", 0.3, "cache size as a fraction of the server total")
		bytesPerGB  = flag.Int64("bytes-per-gb", 4096, "physical payload bytes per logical GB")
		repoPool    = flag.Int("repo-pool", 2, "connections in the repository session pool")
		serialized  = flag.Bool("serialized", false, "legacy fully-serialized query handling (benchmark baseline)")
		execDelay   = flag.Duration("exec-delay", 0, "simulated node-local scan time per cache-answered query")
		shardIdx    = flag.Int("shard-index", -1, "run as shard i of a cluster (-1: standalone)")
		shardCount  = flag.Int("shard-count", 0, "total shards in the cluster (with -shard-index)")
		shardMode   = flag.String("shard-mode", "htm", "cluster ownership mode: htm|rendezvous (must match the router)")
		replicas    = flag.Int("replicas", 1, "cluster replication factor K: how many shards hold each object (with -shard-index; must match the router)")
		wireVer     = flag.Int("wire-version", 0, "cap the negotiated wire version, both toward the repository and toward clients (0 = newest/v3 binary codec; 2 pins gob v2)")
		dataDir     = flag.String("data-dir", "", "directory for warm-state snapshots and the decision journal; restarts rejoin warm from it (empty = no persistence)")
		snapEvery   = flag.Duration("snapshot-interval", 0, "periodic snapshot interval with -data-dir (0 = 30s default)")
		metricsAddr = flag.String("metrics-addr", "", "debug HTTP address serving /metrics, /healthz, /debug/traces and /debug/pprof (empty = off)")
	)
	flag.Parse()

	scfg := catalog.DefaultConfig()
	scfg.Seed = *seed
	scfg.NumObjects = *objects
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return err
	}

	// Cluster shard mode: restrict this node to the objects it owns
	// under the deterministic assignment the router also computes.
	var filter func(model.ObjectID) bool
	ownedSize := survey.TotalSize()
	if *shardIdx >= 0 {
		if *shardCount <= *shardIdx {
			return fmt.Errorf("-shard-count %d must exceed -shard-index %d", *shardCount, *shardIdx)
		}
		mode, err := cluster.ParseMode(*shardMode)
		if err != nil {
			return err
		}
		if *replicas < 1 {
			return fmt.Errorf("-replicas must be at least 1, got %d", *replicas)
		}
		own, err := cluster.NewOwnershipReplicated(survey.Objects(), *shardCount, *replicas, mode)
		if err != nil {
			return err
		}
		filter = own.Filter(*shardIdx)
		// ShardObjects spans every replica rank, so a K≥2 shard sizes
		// its cache for the replica copies it holds too.
		ownedSize = 0
		for _, id := range own.ShardObjects(*shardIdx) {
			obj, err := survey.Object(id)
			if err != nil {
				return err
			}
			ownedSize += obj.Size
		}
	}
	// Capacity scales with what this node can be asked to hold: the
	// whole survey standalone, the owned subset as a shard.
	capacity := cost.Bytes(float64(ownedSize) * *cacheFrac)

	// Region queries resolve only on a standalone cache: a cluster
	// shard owns a subset of the sky, so regions must resolve at the
	// router. The grow hook keeps the resolver survey extending with
	// live births so region covers include newborns.
	var (
		resolver     func(geom.Cap) []model.ObjectID
		resolverGrow func([]model.Birth) error
	)
	if *shardIdx < 0 {
		resolver = survey.CoverCap
		resolverGrow = func(births []model.Birth) error {
			for _, b := range births {
				if err := survey.AddObject(b); err != nil {
					return err
				}
			}
			return nil
		}
	}

	// The factory (rather than a one-shot instance) is what lets a
	// live cluster resize rebuild the policy over a new owned
	// universe (cache.Middleware.Reshard).
	policyFactory, err := policyFactoryFor(*policyName)
	if err != nil {
		return err
	}

	mw, err := cache.New(cache.Config{
		Addr:          *addr,
		RepoAddr:      *repoAddr,
		RepoPool:      *repoPool,
		PolicyFactory: policyFactory,
		Objects:       survey.Objects(),
		ObjectFilter:  filter,
		Capacity:      capacity,
		// Across live reshards the cache keeps holding the same
		// fraction of whatever it currently owns.
		ReshardCapacity:  cache.FractionalCapacity(*cacheFrac),
		Replicas:         *replicas,
		Scale:            netproto.PayloadScale{BytesPerGB: *bytesPerGB},
		Serialized:       *serialized,
		ExecDelay:        *execDelay,
		Resolver:         resolver,
		ResolverGrow:     resolverGrow,
		WireVersion:      *wireVer,
		DataDir:          *dataDir,
		SnapshotInterval: *snapEvery,
		MetricsAddr:      *metricsAddr,
		Logf:             log.Printf,
	})
	if err != nil {
		return err
	}
	if err := mw.Start(); err != nil {
		return err
	}
	if *shardIdx >= 0 {
		log.Printf("cache ready on %s as shard %d/%d (policy %s, capacity %v)",
			mw.Addr(), *shardIdx, *shardCount, *policyName, capacity)
	} else {
		log.Printf("cache ready on %s (policy %s, capacity %v)", mw.Addr(), *policyName, capacity)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down; final ledger: %+v", mw.Ledger())
	return mw.Close()
}

func policyFactoryFor(name string) (func() core.Policy, error) {
	switch name {
	case "vcover":
		return func() core.Policy { return core.NewVCover(core.DefaultVCoverConfig()) }, nil
	case "benefit":
		return func() core.Policy { return core.NewBenefit(core.DefaultBenefitConfig()) }, nil
	case "nocache":
		return func() core.Policy { return core.NewNoCache() }, nil
	case "replica":
		return func() core.Policy { return core.NewReplica() }, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
