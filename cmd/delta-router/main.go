// Command delta-router runs the cluster routing tier: a partition-aware
// front that makes N cache shards look like one Delta cache. Ownership
// is a pure function of the shared survey config, the shard count, and
// the mode, so the router and every `delta-cache -shard-index` compute
// the same map with no coordination service:
//
//	delta-cache -repo :7707 -addr :7801 -shard-index 0 -shard-count 2 &
//	delta-cache -repo :7707 -addr :7802 -shard-index 1 -shard-count 2 &
//	delta-router -addr :7708 -shards 127.0.0.1:7801,127.0.0.1:7802
//
// Clients connect to the router exactly as they would to a single
// cache; multi-object queries scatter to the owning shards and merge.
//
// The router also serves the live-resize admin frames: start the new
// shards (e.g. `-shard-index 2 -shard-count 4` and `-shard-index 3
// -shard-count 4`) and then
//
//	delta-client -cache :7708 -resize 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803,127.0.0.1:7804
//
// takes the cluster from 2 to 4 shards while it serves, streaming the
// moving objects' cached state shard-to-shard (see docs/CLUSTER.md,
// "Resizing a live cluster").
//
// With `-repo` set the router also serves live universe growth: it
// subscribes to the repository's invalidation stream, adopts newly
// published objects into routing (granting each to its owning shard),
// and accepts `delta-client -grow` publications (docs/CLUSTER.md,
// "Growing the universe").
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7708", "client-facing listen address")
		shardList = flag.String("shards", "", "comma-separated shard addresses, in shard-index order")
		repoAddr  = flag.String("repo", "", "repository address; enables live universe growth (birth publication + announcement adoption)")
		modeName  = flag.String("mode", "htm", "ownership mode: htm|rendezvous (must match the shards)")
		objects   = flag.Int("objects", 68, "number of data objects (must match the deployment)")
		seed      = flag.Int64("seed", 2, "survey seed (must match the deployment)")
		pool      = flag.Int("shard-pool", 2, "connections in each shard session pool")
		dialRetry = flag.Duration("dial-retry", 5*time.Second, "how long to retry refused shard dials (startup race)")
		wireVer   = flag.Int("wire-version", 0, "cap the negotiated wire version, toward shards, the repository and clients (0 = newest/v3 binary codec; 2 pins gob v2)")
		metrics   = flag.String("metrics-addr", "", "debug HTTP address serving /metrics, /healthz, /debug/traces and /debug/pprof (empty = off)")
		replicas  = flag.Int("replicas", 1, "replication factor K: how many shards hold each object (must match the shards' -replicas)")
		hedge     = flag.Bool("hedge", false, "enable hedged reads: re-scatter a slow fragment to the next replicas after the hedge delay (needs -replicas >= 2)")
		hedgeGap  = flag.Duration("hedge-delay", 0, "pin the hedge delay (0 derives it from the observed fragment latency p99)")
		resCache  = flag.Bool("result-cache", true, "enable the router result cache + in-flight query coalescing (needs -repo for the invalidation stream)")
		resSize   = flag.Int("result-cache-size", 0, "result cache entry bound (0 = default 1024)")
	)
	flag.Parse()

	addrs := strings.Split(*shardList, ",")
	if *shardList == "" || len(addrs) == 0 {
		return fmt.Errorf("-shards is required (comma-separated shard addresses)")
	}
	mode, err := cluster.ParseMode(*modeName)
	if err != nil {
		return err
	}

	scfg := catalog.DefaultConfig()
	scfg.Seed = *seed
	scfg.NumObjects = *objects
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return err
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1, got %d", *replicas)
	}
	own, err := cluster.NewOwnershipReplicated(survey.Objects(), len(addrs), *replicas, mode)
	if err != nil {
		return err
	}

	cacheSize := *resSize
	if !*resCache {
		cacheSize = -1
	}
	router, err := cluster.NewRouter(cluster.Config{
		Addr:            *addr,
		Shards:          addrs,
		Ownership:       own,
		RepoAddr:        *repoAddr,
		ShardPool:       *pool,
		DialRetry:       *dialRetry,
		ResultCacheSize: cacheSize,
		Resolver:        survey.CoverCap,
		// Keep the resolver survey extending with live births, so
		// region covers include newborns published after startup.
		ResolverGrow: func(births []model.Birth) error {
			for _, b := range births {
				if err := survey.AddObject(b); err != nil {
					return err
				}
			}
			return nil
		},
		WireVersion: *wireVer,
		Hedge:       *hedge,
		HedgeDelay:  *hedgeGap,
		MetricsAddr: *metrics,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	if err := router.Start(); err != nil {
		return err
	}
	for _, si := range router.Topology().Shards {
		log.Printf("shard %d at %s owns %d objects", si.Index, si.Addr, len(si.Objects))
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down; routed %d queries (%d scattered, %d degraded, %d failed over, %d hedged)",
		router.Queries(), router.Scattered(), router.Degraded(), router.Failover(), router.Hedged())
	return router.Close()
}
