// Command delta-expocheck validates Prometheus text exposition on
// stdin: it fails (exit 1) when the input violates the exposition
// format — unknown sample names, non-numeric values, inconsistent
// histogram buckets — or when a family named via -require is absent.
// CI pipes a live node's /metrics scrape through it, so the smoke
// gate is the same parser the tests use:
//
//	curl -fsS http://127.0.0.1:9900/metrics | delta-expocheck -require delta_queries_total
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/deltacache/delta/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "delta-expocheck:", err)
		os.Exit(1)
	}
}

func run() error {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()

	families, err := obs.ParseExposition(os.Stdin)
	if err != nil {
		return err
	}
	if len(families) == 0 {
		return fmt.Errorf("exposition is empty")
	}
	var missing []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, ok := families[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing required families: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("ok: %d families\n", len(families))
	return nil
}
