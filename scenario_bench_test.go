package delta_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
	"github.com/deltacache/delta/internal/workload"
)

// BenchmarkScenario replays every registered workload scenario through
// a live 2-shard loopback cluster and measures what the paper's
// evaluation cares about per traffic shape: cache hit rate, client-
// observed p50/p99 latency, and aggregate q/s. The replay volume is
// fixed (independent of b.N) so CI's -benchtime=1x trajectory runs
// stay comparable; when BENCH_JSON_DIR is set each scenario writes its
// own BENCH_scenario_<name>.json and the strict benchdiff gate on main
// watches the hitRate key — the scenarios are deterministic, so a
// hit-rate drop means the cache tier regressed, not the workload.
func BenchmarkScenario(b *testing.B) {
	for _, sc := range workload.Scenarios() {
		b.Run(sc.Name(), func(b *testing.B) {
			var last scenarioBenchResult
			for i := 0; i < b.N; i++ {
				last = runScenarioBench(b, sc)
			}
			b.ReportMetric(last.HitRate, "hitRate")
			b.ReportMetric(last.QueriesPerSec, "queries/s")
			b.ReportMetric(last.P99Micros, "p99-µs")
			if dir := os.Getenv("BENCH_JSON_DIR"); dir != "" {
				writeScenarioJSON(b, dir, last)
			}
		})
	}
}

// scenarioBenchResult is one scenario replay's measurement, as
// serialized into BENCH_scenario_<name>.json.
type scenarioBenchResult struct {
	Benchmark     string    `json:"benchmark"`
	Scenario      string    `json:"scenario"`
	Timestamp     time.Time `json:"timestamp"`
	Queries       int       `json:"queries"`
	Updates       int       `json:"updates"`
	Births        int       `json:"births"`
	HitRate       float64   `json:"hitRate"`
	P50Micros     float64   `json:"p50Micros"`
	P99Micros     float64   `json:"p99Micros"`
	QueriesPerSec float64   `json:"queriesPerSec"`
}

// runScenarioBench stands up the replay topology (repository + 2 HTM
// shards + router on loopback), drives one fixed-volume trace of the
// scenario from 8 concurrent connections, and measures it.
func runScenarioBench(b *testing.B, sc workload.Scenario) (res scenarioBenchResult) {
	b.Helper()
	const (
		nClients = 8
		nQueries = 600
		nUpdates = 240
	)
	res = scenarioBenchResult{
		Benchmark: "BenchmarkScenario",
		Scenario:  sc.Name(),
		Timestamp: time.Now().UTC(),
	}
	// A level-5 uniform mesh: fine enough that cone covers resolve to
	// small object sets (like the deployed shape), coarse enough that
	// the replay finishes in -benchtime=1x budget.
	scfg := catalog.Config{
		Seed:          7,
		NumObjects:    8192,
		TotalSize:     8 * cost.GB,
		MinObjectSize: 64 * cost.KB,
		MaxObjectSize: 16 * cost.MB,
		Blobs:         10,
		Uniform:       true,
	}
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		b.Fatal(err)
	}
	events, err := sc.Events(survey, workload.Options{Seed: 7, Queries: nQueries, Updates: nUpdates})
	if err != nil {
		b.Fatal(err)
	}
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   2,
		Mode:     cluster.HTMAware,
		// Room for growth-spurt births: newborns must stay cacheable.
		ShardCapacity: 2 * scfg.TotalSize,
		Scale:         netproto.PayloadScale{},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()

	ctx := context.Background()
	clients := make([]*client.Client, nClients)
	for i := range clients {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	var (
		hits atomic.Int64
		wg   sync.WaitGroup
		lats = make([][]time.Duration, nClients)
	)
	queryCh := make(chan *model.Query, 4*nClients)
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			for q := range queryCh {
				start := time.Now()
				r, err := cl.Query(ctx, *q)
				if err != nil {
					b.Errorf("query %d: %v", q.ID, err)
					return
				}
				lats[c] = append(lats[c], time.Since(start))
				if r.Source == "cache" {
					hits.Add(1)
				}
			}
		}(c)
	}

	adminCl := clients[0]
	start := time.Now()
	for i := range events {
		switch ev := &events[i]; ev.Kind {
		case model.EventQuery:
			queryCh <- ev.Query
			res.Queries++
		case model.EventUpdate:
			repo.ApplyUpdate(*ev.Update)
			res.Updates++
		case model.EventBirth:
			if _, err := adminCl.AddObjects(ctx, []model.Birth{*ev.Birth}); err != nil {
				b.Fatalf("publish birth %d: %v", ev.Birth.Object.ID, err)
			}
			res.Births++
		}
	}
	close(queryCh)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	slices.Sort(all)
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		return all[min(int(float64(len(all))*p), len(all)-1)]
	}
	res.HitRate = float64(hits.Load()) / float64(max(res.Queries, 1))
	res.P50Micros = float64(pct(0.50).Microseconds())
	res.P99Micros = float64(pct(0.99).Microseconds())
	res.QueriesPerSec = float64(res.Queries) / elapsed.Seconds()
	return res
}

// writeScenarioJSON records one scenario's replay for the CI perf
// trajectory (one BENCH_scenario_*.json artifact per scenario).
func writeScenarioJSON(b *testing.B, dir string, res scenarioBenchResult) {
	b.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_scenario_"+res.Scenario+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s (hitRate %.3f, p99 %.0fµs, %.0f q/s)",
		path, res.HitRate, res.P99Micros, res.QueriesPerSec)
}
