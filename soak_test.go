package delta_test

import (
	"context"
	"os"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/cluster"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
	"github.com/deltacache/delta/internal/workload"
)

// soakShape parameterizes TestMillionObjectSoak: the same harness runs
// a scaled-down tier-1 variant on every CI run and the million-object
// acceptance shape behind DELTA_SOAK=1 (the soak CI lane on main).
type soakShape struct {
	objects  int // uniform HTM mesh size; must be 8·4^level
	conns    int // concurrent client connections
	queries  int
	updates  int
	shards   int
	heapCeil uint64 // post-run Go heap bound (bytes)
}

// TestMillionObjectSoak drives the flash-crowd scenario through a live
// loopback cluster — repository, HTM-sharded cache shards, router, and
// real client connections — and requires zero failed or degraded
// queries plus a bounded post-run heap. The default shape is a
// level-6 uniform mesh (32,768 objects, 64 connections) so the soak
// runs in tier-1 time under -race; DELTA_SOAK=1 switches to the
// acceptance shape: a level-9 mesh of 2,097,152 catalog objects with
// 1,024 concurrent connections, the scale the dense ownership and
// cache index representations exist for.
func TestMillionObjectSoak(t *testing.T) {
	full := os.Getenv("DELTA_SOAK") == "1"
	if testing.Short() && !full {
		t.Skip("skipping scaled soak in -short mode (set DELTA_SOAK=1 for the full shape)")
	}
	shape := soakShape{
		objects: 32768, conns: 64, queries: 2048, updates: 512,
		shards: 2, heapCeil: 1 << 30,
	}
	if full {
		shape = soakShape{
			objects: 2097152, conns: 1024, queries: 16384, updates: 4096,
			shards: 2, heapCeil: 6 << 30,
		}
	}
	runScenarioSoak(t, shape)
}

func runScenarioSoak(t *testing.T, shape soakShape) {
	t.Helper()
	scfg := catalog.Config{
		Seed:          11,
		NumObjects:    shape.objects,
		TotalSize:     cost.Bytes(shape.objects) * cost.MB,
		MinObjectSize: 256 * cost.KB,
		MaxObjectSize: 4 * cost.MB,
		Blobs:         12,
		Uniform:       true,
	}
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := workload.Lookup("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	events, err := sc.Events(survey, workload.Options{
		Seed: 11, Queries: shape.queries, Updates: shape.updates,
	})
	if err != nil {
		t.Fatal(err)
	}

	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.PayloadScale{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Start(); err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	lc, err := cluster.SpawnLocal(cluster.LocalConfig{
		RepoAddr: repo.Addr(),
		Objects:  survey.Objects(),
		Shards:   shape.shards,
		Mode:     cluster.HTMAware,
		Scale:    netproto.PayloadScale{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	ctx := context.Background()
	clients := make([]*client.Client, shape.conns)
	for i := range clients {
		cl, err := client.DialCluster(lc.Router.Addr())
		if err != nil {
			t.Fatalf("dial conn %d: %v", i, err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	var (
		served   atomic.Int64
		hits     atomic.Int64
		failed   atomic.Int64
		degraded atomic.Int64
		firstErr sync.Once
		wg       sync.WaitGroup
		lats     = make([][]time.Duration, shape.conns)
	)
	queryCh := make(chan *model.Query, 4*shape.conns)
	for c := 0; c < shape.conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			for q := range queryCh {
				start := time.Now()
				res, err := cl.Query(ctx, *q)
				if err != nil {
					failed.Add(1)
					firstErr.Do(func() { t.Errorf("query %d failed: %v", q.ID, err) })
					continue
				}
				lats[c] = append(lats[c], time.Since(start))
				served.Add(1)
				if res.Degraded {
					degraded.Add(1)
				}
				if res.Source == "cache" {
					hits.Add(1)
				}
			}
		}(c)
	}

	// The feeder walks the trace in order: queries fan out across the
	// connection pool, updates land at the repository (whose
	// invalidation stream carries them to the owning shards), and any
	// births publish through the router before later queries can
	// reference them.
	adminCl := clients[0]
	start := time.Now()
	var queriesSent, updatesSent, birthsSent int
	for i := range events {
		switch ev := &events[i]; ev.Kind {
		case model.EventQuery:
			queryCh <- ev.Query
			queriesSent++
		case model.EventUpdate:
			repo.ApplyUpdate(*ev.Update)
			updatesSent++
		case model.EventBirth:
			if _, err := adminCl.AddObjects(ctx, []model.Birth{*ev.Birth}); err != nil {
				t.Fatalf("publish birth %d: %v", ev.Birth.Object.ID, err)
			}
			birthsSent++
		}
	}
	close(queryCh)
	wg.Wait()
	elapsed := time.Since(start)

	if failed.Load() > 0 {
		t.Fatalf("%d of %d queries failed", failed.Load(), queriesSent)
	}
	if degraded.Load() > 0 {
		t.Fatalf("%d degraded results from a healthy cluster", degraded.Load())
	}
	if got := int(served.Load()); got != queriesSent {
		t.Fatalf("served %d of %d queries", got, queriesSent)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	slices.Sort(all)
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		return all[min(int(float64(len(all))*p), len(all)-1)]
	}

	// Memory bound: after the trace drains, the Go heap must stay
	// under the shape's ceiling — the regression this soak exists to
	// catch is a per-object map or per-connection buffer that scales
	// super-linearly past the million-object mark.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("soak %s: %d objects / %d shards / %d conns: %d queries (%.1f%% cache hits), %d updates, %d births in %v (%.0f q/s, p50 %v, p99 %v); heap %.1f MiB",
		sc.Name(), shape.objects, shape.shards, shape.conns,
		queriesSent, 100*float64(hits.Load())/float64(max(queriesSent, 1)),
		updatesSent, birthsSent, elapsed.Round(time.Millisecond),
		float64(queriesSent)/elapsed.Seconds(), pct(0.50), pct(0.99),
		float64(ms.HeapAlloc)/(1<<20))
	if ms.HeapAlloc > shape.heapCeil {
		t.Fatalf("post-soak heap %d bytes exceeds the %d-byte ceiling", ms.HeapAlloc, shape.heapCeil)
	}
}
