// granularity: the Figure 8(b) scenario in miniature — how the choice of
// data-object granularity (the HTM level) changes VCover's traffic. Too
// few objects waste cache space on unqueried data; too many make it
// unlikely that a query's whole B(q) is resident.
//
//	go run ./examples/granularity
package main

import (
	"fmt"
	"log"

	"github.com/deltacache/delta/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	counts := []int{10, 20, 68, 91, 134, 285, 532}
	fmt.Println("VCover final traffic by object-set granularity (Figure 8b):")
	fmt.Printf("%-10s %15s\n", "objects", "total traffic")
	rows, err := experiments.Fig8b(experiments.Options{Scale: 0.05}, counts)
	if err != nil {
		return err
	}
	best := rows[0]
	for _, row := range rows {
		fmt.Printf("%-10d %15v\n", row.NumObjects, row.Final)
		if row.Final < best.Final {
			best = row
		}
	}
	fmt.Printf("\nbest granularity here: %d objects\n", best.NumObjects)
	fmt.Println("Coarse partitions (10–20 objects) pay heavily: loading one object drags in")
	fmt.Println("sky nobody queries. The paper additionally observes a penalty at very fine")
	fmt.Println("granularity (best at 91 of its object sets) because its real queries were")
	fmt.Println("spatially diffuse enough to straddle many small partitions; the synthetic")
	fmt.Println("campaigns here are tighter, so the fine-grained penalty is milder.")
	return nil
}
