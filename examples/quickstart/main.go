// Quickstart: the paper's Section 3.1 worked example, then a small
// synthetic survey comparing all five policies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/experiments"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== The paper's worked example (Section 3.1, Figure 2) ===")
	if err := paperExample(); err != nil {
		return err
	}

	fmt.Println("\n=== Five policies on a small synthetic survey ===")
	return smallComparison()
}

// paperExample replays the two competing strategies from the paper
// through the simulator's full cost accounting.
func paperExample() error {
	objects, initial, capacity, events := core.PaperExample()

	planA := &sim.Scripted{
		PolicyName: "PlanA(load-o4)",
		Preloaded:  initial,
		Decisions: []core.Decision{
			{Evict: []model.ObjectID{3}, Load: []model.ObjectID{4}},
			{},
			{ApplyUpdates: []model.UpdateID{1, 2}},
			{}, {},
			{ShipQuery: true},
			{},
			{ApplyUpdates: []model.UpdateID{4}},
		},
	}
	planB := &sim.Scripted{
		PolicyName: "PlanB(ship-queries)",
		Preloaded:  initial,
		Decisions: []core.Decision{
			{}, {},
			{ShipQuery: true},
			{}, {},
			{ShipQuery: true},
			{},
			{ShipQuery: true},
		},
	}
	for _, plan := range []*sim.Scripted{planA, planB} {
		res, err := sim.Run(plan, objects, events, sim.Config{CacheCapacity: capacity})
		if err != nil {
			return err
		}
		if len(res.Violations) > 0 {
			return fmt.Errorf("%s violated constraints: %v", plan.Name(), res.Violations)
		}
		fmt.Printf("%-20s total network traffic: %v\n", plan.Name(), res.Total())
	}
	fmt.Println("Plan A wins (26 vs 28 GB) — but only because q8 tolerates 2s of staleness.")
	return nil
}

// smallComparison runs the five policies of Section 6 on a reduced
// synthetic SDSS workload.
func smallComparison() error {
	setup, err := experiments.NewSetup(experiments.Options{Scale: 0.05})
	if err != nil {
		return err
	}
	fmt.Printf("survey: %d objects, %v total; cache capacity %v; %d events\n",
		setup.Survey.NumObjects(), setup.Survey.TotalSize(), setup.Capacity(), len(setup.Events))

	results, err := setup.RunAll()
	if err != nil {
		return err
	}
	post := experiments.PostWarmup(results, 0.5)
	fmt.Printf("%-10s %15s %15s\n", "policy", "full trace", "post-warmup")
	for _, name := range experiments.PolicyNames {
		fmt.Printf("%-10s %15v %15v\n", name, results[name].Total(), post[name])
	}
	fmt.Println("\n(the paper's Figure 7b plots the post-warmup regime; VCover ends near half of NoCache)")
	return nil
}
