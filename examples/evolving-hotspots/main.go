// evolving-hotspots: demonstrates design choice (B) of the paper —
// robustness to workload evolution. The workload's query hotspots flip
// to entirely different sky mid-trace; VCover adapts because its cover
// computations are grounded in online analysis, while Benefit trails the
// shift by whole windows and keeps paying for yesterday's hotspot.
//
//	go run ./examples/evolving-hotspots
package main

import (
	"fmt"
	"log"

	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/sim"
	"github.com/deltacache/delta/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 68
	scfg.TotalSize = 64 * cost.GB
	scfg.MinObjectSize = 20 * cost.MB
	scfg.MaxObjectSize = 8 * cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return err
	}

	// Two trace halves with different campaign seeds — the second half
	// queries entirely different regions, like a new observing season.
	wcfg := workload.DefaultConfig()
	wcfg.NumQueries = 20_000
	wcfg.NumUpdates = 20_000
	wcfg.WarmupFrac = 0 // no ramp: make the flip the only nonstationarity
	firstHalf, err := generate(survey, wcfg, 11)
	if err != nil {
		return err
	}
	secondHalf, err := generate(survey, wcfg, 99)
	if err != nil {
		return err
	}
	events := splice(firstHalf, secondHalf)
	fmt.Printf("trace: %d events; hotspots flip at the midpoint\n\n", len(events))

	capacity := 20 * cost.GB
	slowBenefit := core.DefaultBenefitConfig()
	slowBenefit.Window = 10_000 // a mis-tuned δ: replans only 4 times
	policies := []core.Policy{
		core.NewNoCache(),
		core.NewBenefit(core.DefaultBenefitConfig()),
		core.NewBenefit(slowBenefit),
		core.NewVCover(core.DefaultVCoverConfig()),
	}
	fmt.Printf("%-14s %14s %14s %14s\n", "policy", "total", "1st half", "2nd half")
	for _, p := range policies {
		res, err := sim.Run(p, survey.Objects(), events, sim.Config{
			CacheCapacity: capacity, SampleEvery: len(events) / 100,
		})
		if err != nil {
			return err
		}
		if len(res.Violations) > 0 {
			return fmt.Errorf("%s: %v", p.Name(), res.Violations[0])
		}
		half := halfCost(res)
		label := res.Policy
		if p, ok := p.(*core.Benefit); ok {
			label = fmt.Sprintf("Benefit δ=%d", p.Config().Window)
		}
		fmt.Printf("%-14s %14v %14v %14v\n", label, res.Total(), half, res.Total()-half)
	}
	fmt.Println("\nVCover's second-half cost stays controlled after the flip: stale decision")
	fmt.Println("state is dropped with each vertex cover, and the new hotspot's objects are")
	fmt.Println("loaded as soon as their shipping costs justify it. Benefit's behaviour")
	fmt.Println("swings with its window size δ — the dependence Section 5 calls out.")
	return nil
}

func generate(survey *catalog.Survey, cfg workload.Config, seed int64) ([]model.Event, error) {
	cfg.Seed = seed
	g, err := workload.NewGenerator(survey, cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate()
}

// splice concatenates two traces, renumbering the second half's
// sequence, IDs and times to continue the first.
func splice(a, b []model.Event) []model.Event {
	out := make([]model.Event, 0, len(a)+len(b))
	out = append(out, a...)
	var (
		lastTime = a[len(a)-1].Time()
		seq      = int64(len(a))
		qBase    model.QueryID
		uBase    model.UpdateID
	)
	for i := range a {
		switch a[i].Kind {
		case model.EventQuery:
			if a[i].Query.ID > qBase {
				qBase = a[i].Query.ID
			}
		case model.EventUpdate:
			if a[i].Update.ID > uBase {
				uBase = a[i].Update.ID
			}
		}
	}
	for i := range b {
		e := b[i]
		e.Seq = seq
		seq++
		switch e.Kind {
		case model.EventQuery:
			q := *e.Query
			q.ID += qBase
			q.Time += lastTime
			e.Query = &q
		case model.EventUpdate:
			u := *e.Update
			u.ID += uBase
			u.Time += lastTime
			e.Update = &u
		}
		out = append(out, e)
	}
	return out
}

// halfCost reads the cumulative cost at the trace midpoint.
func halfCost(res *sim.Result) cost.Bytes {
	if len(res.Series) == 0 {
		return 0
	}
	mid := res.Series[len(res.Series)-1].Seq / 2
	var c cost.Bytes
	for _, pt := range res.Series {
		if pt.Seq > mid {
			break
		}
		c = pt.Total
	}
	return c
}
