// astronomy-survey: an end-to-end Delta deployment in one process —
// repository, middleware cache (VCover) and astronomer clients speaking
// the SQL dialect over real TCP sockets, with a live update pipeline.
//
//	go run ./examples/astronomy-survey
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/deltacache/delta/internal/cache"
	"github.com/deltacache/delta/internal/catalog"
	"github.com/deltacache/delta/internal/client"
	"github.com/deltacache/delta/internal/core"
	"github.com/deltacache/delta/internal/cost"
	"github.com/deltacache/delta/internal/model"
	"github.com/deltacache/delta/internal/netproto"
	"github.com/deltacache/delta/internal/server"
	"github.com/deltacache/delta/internal/sqlmini"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	// A small survey so loads are quick in the demo.
	scfg := catalog.DefaultConfig()
	scfg.NumObjects = 32
	scfg.TotalSize = 8 * cost.GB
	scfg.MinObjectSize = 20 * cost.MB
	scfg.MaxObjectSize = cost.GB
	survey, err := catalog.NewSurvey(scfg)
	if err != nil {
		return err
	}

	// Repository.
	repo, err := server.New(server.Config{Survey: survey, Scale: netproto.DefaultScale()})
	if err != nil {
		return err
	}
	if err := repo.Start(); err != nil {
		return err
	}
	defer repo.Close()
	fmt.Printf("repository: %s (%d objects, %v)\n", repo.Addr(), survey.NumObjects(), survey.TotalSize())

	// Middleware cache with VCover.
	mw, err := cache.New(cache.Config{
		RepoAddr:   repo.Addr(),
		Policy:     core.NewVCover(core.DefaultVCoverConfig()),
		Objects:    survey.Objects(),
		Capacity:   3 * cost.GB,
		Scale:      netproto.DefaultScale(),
		SampleRows: survey.SampleRows(2000, scfg.Seed),
	})
	if err != nil {
		return err
	}
	if err := mw.Start(); err != nil {
		return err
	}
	defer mw.Close()
	fmt.Printf("cache:      %s (VCover, capacity 3GB)\n\n", mw.Addr())

	// An astronomer issues SQL against a hotspot region while the
	// pipeline keeps observing.
	cl, err := client.Dial(mw.Addr())
	if err != nil {
		return err
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(7))
	hot := survey.Sky().Blobs(catalog.QueryHot)[0]
	ra, dec := hot.Center.RADec()

	start := time.Now()
	queries := []string{
		// A regional bulk extract: its result is object-scale, so its
		// shipping cost quickly justifies loading the hotspot objects.
		fmt.Sprintf("SELECT * FROM PhotoObj WHERE CONTAINS(POINT(%.2f, %.2f), CIRCLE(%.2f, %.2f, 25))", ra, dec, ra, dec),
		fmt.Sprintf("SELECT objID, ra, dec, r FROM PhotoObj WHERE CONTAINS(POINT(%.2f, %.2f), CIRCLE(%.2f, %.2f, 20))", ra, dec, ra, dec),
		fmt.Sprintf("SELECT ra, dec FROM PhotoObj WHERE ra BETWEEN %.2f AND %.2f AND dec BETWEEN %.2f AND %.2f AND r < 20 WITH STALENESS '5m'",
			ra-12, ra+12, dec-12, dec+12),
	}
	var uid model.UpdateID

	fmt.Println("--- a research campaign on one region; the region grows as the telescope observes ---")
	for round := 0; round < 12; round++ {
		// The telescope adds data near the hotspot while we work.
		uid++
		pos := hot.Center
		repo.ApplyUpdate(model.Update{
			ID:     uid,
			Object: survey.ObjectAt(pos),
			Cost:   cost.Bytes(rng.Intn(20)+1) * cost.MB,
			Time:   time.Since(start),
		})

		sql := queries[round%len(queries)]
		_, q, err := sqlmini.Compile(sql, survey)
		if err != nil {
			return err
		}
		q.Time = time.Since(start)
		res, err := cl.Query(ctx, *q)
		if err != nil {
			return err
		}
		fmt.Printf("round %2d: answered by %-10s result=%8v rows=%d\n",
			round+1, res.Source, cost.Bytes(res.Logical), len(res.Rows))
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\ncache stats: %d queries, %d at cache, %d shipped\n",
		stats.Queries, stats.AtCache, stats.Shipped)
	fmt.Printf("traffic:     query-ship=%v update-ship=%v loads=%v total=%v\n",
		stats.Ledger.QueryShip, stats.Ledger.UpdateShip,
		stats.Ledger.ObjectLoad, stats.Ledger.Total())
	fmt.Printf("cached:      %v\n", stats.Cached)
	fmt.Println("\nThe first rounds ship to the repository; once the hotspot's shipping costs")
	fmt.Println("cover its load cost, VCover loads it and later rounds answer at the cache,")
	fmt.Println("shipping only the cheap updates the staleness tolerances require.")
	return nil
}
